//! The distributed direction-optimizing BFS engine (§4.2–§4.4, §5).
//!
//! One BFS iteration executes six *sub-iterations*, one per subgraph
//! component, ordered by degree level (EH2EH, E2L, L2E, H2L, L2H, L2L),
//! each with its own push/pull decision. State lives where the
//! partition dictates:
//!
//! * **hub state** (E∪H frontier/visited bits) is delegated: every rank
//!   keeps a replica, and newly discovered hub bits propagate at
//!   sub-iteration boundaries through a row-then-column OR-allreduce —
//!   the row hop rides the supernode-internal network, the column hop
//!   pays the oversubscribed tree, exactly the delegate traffic of
//!   §4.1. Until that boundary, a remote discovery is invisible, which
//!   matches the visibility semantics of real delegates.
//! * **hub parents** are *delegate-local* and reduced once after the
//!   traversal — the delayed reduction of §5.
//! * **L state** lives only at the owner; pushes reach it as `(dest,
//!   parent)` messages bucketed on-chip (OCS-RMA) and exchanged with
//!   `alltoallv` (intra-row for H2L, hierarchically forwarded via the
//!   column-then-row intersection node for L2L, §4.4).
//!
//! Bottom-up sub-iterations honor "the latest visited status" (§4.2):
//! earlier sub-iterations of the same iteration mark vertices visited
//! before later ones run, so nothing already activated gets pulled.

use sunbfs_common::bitmap::wide;
use sunbfs_common::{pool, Bitmap, TimeAccumulator, INVALID_VERTEX};
use sunbfs_net::{CommStats, RankCtx, Scope};
use sunbfs_part::RankPartition;
use sunbfs_sunway::{ocs_sort_rma, OcsConfig, SegmentedBitvec};

use crate::balance;
use crate::checkpoint::{CheckpointState, CheckpointStore, ResumeStats};
use crate::config::{
    choose_crossing, choose_local, choose_measured, Direction, DirectionHeuristic, EngineConfig,
};
use crate::costing;
use crate::stats::{BfsRunStats, IterationStats, SubIterationStats};

/// Iteration cap that converts a non-shrinking frontier (an engine bug)
/// into a clean error instead of an unbounded loop.
pub(crate) const MAX_ITERATIONS: u32 = 1_000;

/// Word grain for pool-chunked bitmap scans: workers claim blocks of at
/// least this many words (64 vertices each), the CPE-block analogue.
pub(crate) const SCAN_GRAIN_WORDS: u64 = 4;

/// Item grain for pool-chunked frontier/vertex-range scans.
pub(crate) const SCAN_GRAIN_ITEMS: u64 = 256;

/// Errors one traversal can report. SPMD-consistent: the conditions are
/// derived from replicated/global state, so every rank observes the
/// same error on the same collective schedule (no deadlock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The frontier failed to drain within [`MAX_ITERATIONS`]
    /// iterations — a BFS must terminate in at most `diameter` steps.
    NonTermination {
        /// Iterations executed before giving up.
        iterations: u32,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NonTermination { iterations } => {
                write!(
                    f,
                    "BFS failed to terminate within {iterations} iterations — engine bug"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of one traversal on one rank.
#[derive(Clone, Debug)]
pub struct BfsOutput {
    /// Parents of this rank's owned vertices (global vertex ids;
    /// [`INVALID_VERTEX`] where unreached). The root's parent is itself.
    pub parents: Vec<u64>,
    /// Per-run statistics (timings, iteration series, TEPS inputs).
    pub stats: BfsRunStats,
}

/// Run one BFS from `root` over this rank's partition.
///
/// SPMD: all ranks call with identical `root` and `cfg`.
pub fn run_bfs(
    ctx: &mut RankCtx,
    part: &RankPartition,
    root: u64,
    cfg: &EngineConfig,
) -> Result<BfsOutput, EngineError> {
    run_bfs_recoverable(ctx, part, root, cfg, None)
}

/// [`run_bfs`] with iteration-level checkpointing: when `checkpoints`
/// is given, the engine snapshots its loop state into the store after
/// every completed iteration, and — if the store already holds a
/// verified checkpoint common to all ranks (a previous attempt of the
/// *same* root died mid-traversal) — resumes from it instead of
/// restarting at the root, charging the resumed segment on top of the
/// checkpointed simulated time so the run's statistics read like one
/// continuous traversal.
///
/// SPMD: all ranks call with identical `root`, `cfg`, and a store
/// shared across the cluster's ranks.
pub fn run_bfs_recoverable(
    ctx: &mut RankCtx,
    part: &RankPartition,
    root: u64,
    cfg: &EngineConfig,
    checkpoints: Option<&CheckpointStore>,
) -> Result<BfsOutput, EngineError> {
    Engine::new(ctx, part, *cfg).run(ctx, root, checkpoints)
}

/// Row-then-column allreduce of hub bitmap words with summed counters
/// piggybacked as trailing elements — one collective pair instead of a
/// bitmap sync plus scalar collectives. Returns the globally OR-ed
/// words and the global sums of `counters` (element-wise). The fixed
/// heuristic rides exactly one counter, the measured heuristic two (the
/// visited count plus its degree mass), so the payload size is part of
/// each mode's byte-identity contract.
pub(crate) fn hub_sync_collective(
    ctx: &mut RankCtx,
    op: &str,
    words: &[u64],
    counters: &[u64],
) -> (Vec<u64>, Vec<u64>) {
    let nwords = words.len();
    let mut payload = words.to_vec();
    payload.extend_from_slice(counters);
    let combine = move |i: usize, a: &mut u64, b: &u64| if i < nwords { *a |= b } else { *a += b };
    let payload = ctx.allreduce_with_indexed(Scope::Row, op, payload, None, combine);
    let mut payload = ctx.allreduce_with_indexed(Scope::Col, op, payload, None, combine);
    let counts = payload.split_off(nwords);
    (payload, counts)
}

/// Coarse fixed-range bucket for the two-stage destination update:
/// `offset ∈ [0, span)` maps into one of `ranges` buckets. When the
/// owned span is smaller than `ranges`, several bucket indices go
/// unused but every offset still lands in-bounds (the `min` clamp).
#[inline]
pub(crate) fn range_bucket(offset: u64, span: u64, ranges: u64) -> usize {
    debug_assert!(offset < span);
    ((offset * ranges / span) as usize).min(ranges as usize - 1)
}

struct Engine<'a> {
    part: &'a RankPartition,
    cfg: EngineConfig,
    // Replicated hub state.
    hub_curr: Bitmap,
    hub_visited: Bitmap,
    hub_next: Bitmap,
    hub_update: Bitmap,
    hub_parent: Vec<u64>,
    // Owner-local L state (indexed by local offset).
    l_curr: Bitmap,
    l_visited: Bitmap,
    l_next: Bitmap,
    l_parent: Vec<u64>,
    // Cached global totals (one collective at engine setup).
    total_l_connected: u64,
    total_el: u64,
    total_h2l: u64,
    total_lh: u64,
    total_l2l: u64,
    // Mesh facts.
    rows: usize,
    cols: usize,
    // Scratch counters.
    scanned: u64,
    /// Per-sub-iteration scratch for the current iteration
    /// ([`crate::config::Component::ALL`] order).
    sub_stats: [SubIterationStats; 6],
    /// Index of the sub-iteration currently executing (attributes
    /// scanned edges and OCS kernel work to the right slot).
    cur_sub: usize,
    // Measured-heuristic state (all zeros / Push under Fixed).
    /// Total degree mass per class (E, H, connected L) — one extra
    /// triple on the setup allreduce in measured mode.
    class_mass_total: [u64; 3],
    /// Degree mass of the *current* frontier per class (global; carried
    /// from the previous iteration's closing allreduce).
    frontier_mass: [u64; 3],
    /// Accumulated degree mass of visited vertices per class (global;
    /// the root's own mass is uniformly excluded on every rank).
    visited_mass: [u64; 3],
    /// Previous per-component directions — the hysteresis state.
    prev_dirs: [Direction; 6],
    /// Measured `(m_f, m_u)` each component's decision saw this
    /// iteration (surfaced in [`SubIterationStats`]; zeros under Fixed).
    sub_masses: [(u64, u64); 6],
}

impl<'a> Engine<'a> {
    fn new(ctx: &mut RankCtx, part: &'a RankPartition, cfg: EngineConfig) -> Self {
        let nh = part.directory.num_hubs() as u64;
        let range = part.owned_range();
        let local_n = range.end - range.start;
        let topo = ctx.topology();
        // Connected (degree > 0) L vertices, globally — the heuristic
        // denominator for the L class.
        let dir = &part.directory;
        let local_l_connected = part
            .owned_degrees
            .iter()
            .enumerate()
            .filter(|(i, &d)| d > 0 && dir.hub_id(range.start + *i as u64).is_none())
            .count() as u64;
        // One setup collective carries every global total the engine
        // needs: the L-class denominator plus per-component global edge
        // counts (globally empty components skip their collectives, so
        // e.g. the |H| = 0 degeneration pays no H2L exchanges at all).
        // The measured heuristic appends its three per-class degree-mass
        // totals to the same payload — no extra collective, and the
        // fixed mode's payload stays byte-identical to the pre-measured
        // engine.
        let mut payload = vec![
            local_l_connected,
            part.stats.e2l,
            part.stats.h2l,
            part.stats.l2h,
            part.stats.l2l,
        ];
        if cfg.heuristic == DirectionHeuristic::Measured {
            let num_e = dir.num_e();
            let mut class_mass = [0u64; 3];
            for (i, &d) in part.owned_degrees.iter().enumerate() {
                match dir.hub_id(range.start + i as u64) {
                    Some(h) if h < num_e => class_mass[0] += d as u64,
                    Some(_) => class_mass[1] += d as u64,
                    None if d > 0 => class_mass[2] += d as u64,
                    None => {}
                }
            }
            payload.extend(class_mass);
        }
        let totals = ctx.allreduce_with(Scope::World, "heur.totals", payload, None, |a, b| *a += b);
        let total_l_connected = totals[0];
        let class_mass_total = match totals.get(5..8) {
            Some(m) => [m[0], m[1], m[2]],
            None => [0; 3],
        };
        Engine {
            part,
            cfg,
            hub_curr: Bitmap::new(nh),
            hub_visited: Bitmap::new(nh),
            hub_next: Bitmap::new(nh),
            hub_update: Bitmap::new(nh),
            hub_parent: vec![INVALID_VERTEX; nh as usize],
            l_curr: Bitmap::new(local_n),
            l_visited: Bitmap::new(local_n),
            l_next: Bitmap::new(local_n),
            l_parent: vec![INVALID_VERTEX; local_n as usize],
            total_l_connected,
            total_el: totals[1],
            total_h2l: totals[2],
            total_lh: totals[3],
            total_l2l: totals[4],
            rows: topo.shape().rows,
            cols: topo.shape().cols,
            scanned: 0,
            sub_stats: Default::default(),
            cur_sub: 0,
            class_mass_total,
            frontier_mass: [0; 3],
            visited_mass: [0; 3],
            prev_dirs: [Direction::Push; 6],
            sub_masses: [(0, 0); 6],
        }
    }

    /// True when the measured-degree decision family is in force.
    #[inline]
    fn measured(&self) -> bool {
        self.cfg.heuristic == DirectionHeuristic::Measured
    }

    /// This rank's contribution to a class-split frontier degree mass:
    /// `(E mass, H mass, L mass)` of the given hub-frontier and
    /// L-frontier bitmaps, counting only *owned* vertices (each rank
    /// knows the global degree of its owned slice only — hub degrees are
    /// not replicated — so summing across ranks yields the global mass).
    fn local_frontier_mass(&self, hub_bits: &Bitmap, l_bits: &Bitmap) -> [u64; 3] {
        let dir = &self.part.directory;
        let range = self.part.owned_range();
        let num_e = dir.num_e() as u64;
        let mut mass = [0u64; 3];
        for h in hub_bits.iter_ones() {
            let v = dir.vertex_of(h as u32);
            if range.contains(&v) {
                let d = self.part.owned_degrees[(v - range.start) as usize] as u64;
                mass[if h < num_e { 0 } else { 1 }] += d;
            }
        }
        for li in l_bits.iter_ones() {
            mass[2] += self.part.owned_degrees[li as usize] as u64;
        }
        mass
    }

    /// This rank's degree mass of visited owned L vertices (the measured
    /// counter piggybacked on the L2E hub sync).
    fn local_l_visited_mass(&self) -> u64 {
        self.l_visited
            .iter_ones()
            .map(|li| self.part.owned_degrees[li as usize] as u64)
            .sum()
    }

    fn run(
        mut self,
        ctx: &mut RankCtx,
        root: u64,
        checkpoints: Option<&CheckpointStore>,
    ) -> Result<BfsOutput, EngineError> {
        let t_start = ctx.now();
        let acc_start = ctx.accumulator().clone();
        let comm_start = ctx.comm_stats().clone();
        let dir = &self.part.directory;
        let range = self.part.owned_range();

        // ---- resume decision (SPMD-consistent: `common_iter` reads
        // the shared store, so every rank takes the same branch) ----
        let resumed = checkpoints
            .filter(|s| s.common_iter().is_some())
            .and_then(|s| s.load(ctx.rank()));

        let mut iterations: Vec<IterationStats>;
        let mut iter: u32;
        // L-class counters are carried across iterations instead of
        // being re-collected: the root's class is globally known, and
        // each iteration's closing allreduce refreshes them (real BFS
        // codes piggyback these counters for exactly this reason —
        // scalar collectives are pure latency).
        let mut active_l: u64;
        let mut visited_l: u64;
        // Statistics already paid for by the checkpointed segment; the
        // final run stats are `base + what this segment spends`.
        let mut base = ResumeStats::default();
        let mut base_sim_seconds = 0.0f64;

        match resumed {
            Some((state, stats)) => {
                // ---- restore the loop-carried state; root activation
                // is part of the checkpointed history ----
                iter = state.iter;
                active_l = state.active_l;
                visited_l = state.visited_l;
                base_sim_seconds = state.sim_seconds;
                self.hub_curr = state.hub_curr;
                self.hub_visited = state.hub_visited;
                self.hub_parent = state.hub_parent;
                self.l_curr = state.l_curr;
                self.l_visited = state.l_visited;
                self.l_parent = state.l_parent;
                // Measured-heuristic loop state rides the checkpoint
                // (codec v2), so a resumed run re-decides directions
                // from the exact masses the dead run saw — no extra
                // collective, byte-identical continuation.
                self.frontier_mass = state.frontier_mass;
                self.visited_mass = state.visited_mass;
                self.prev_dirs = state.prev_dirs;
                iterations = stats.iterations.clone();
                base = stats;
            }
            None => {
                // ---- root activation (replicated hubs / owner-local L) ----
                match dir.hub_id(root) {
                    Some(h) => {
                        self.hub_curr.set(h as u64);
                        self.hub_visited.set(h as u64);
                        self.hub_parent[h as usize] = root;
                    }
                    None => {
                        if range.contains(&root) {
                            let li = root - range.start;
                            self.l_curr.set(li);
                            self.l_visited.set(li);
                            self.l_parent[li as usize] = root;
                        }
                    }
                }
                iterations = Vec::new();
                iter = 0;
                let root_is_l = dir.hub_id(root).is_none();
                active_l = root_is_l as u64;
                visited_l = root_is_l as u64;
            }
        }

        // A checkpoint taken after the *final* iteration restores a
        // drained frontier: skip straight to the parent reduction.
        let mut done = self.hub_curr.is_zero() && active_l == 0;
        while !done {
            iter += 1;
            let mut st = IterationStats {
                iter,
                ..Default::default()
            };

            // ---- per-class counts for the heuristics ----
            let num_e = dir.num_e() as u64;
            let nh = dir.num_hubs() as u64;
            st.active_e = self.hub_curr.count_ones_range(0, num_e);
            st.active_h = self.hub_curr.count_ones_range(num_e, nh);
            st.active_l = active_l;

            // ---- direction selection ----
            let dirs = self.select_directions(&st, visited_l);
            st.directions = dirs;

            // ---- sub-iterations, §4.2 order ----
            self.scanned = 0;
            self.sub_stats = Default::default();
            self.cur_sub = 0;
            self.eh2eh(ctx, dirs[0]);
            self.sync_hubs(ctx, "EH2EH", &[0]);

            self.cur_sub = 1;
            self.e2l(ctx, dirs[1]);
            self.cur_sub = 2;
            self.l2e(ctx, dirs[2]);
            // "The direction selection procedure uses the latest
            // unvisited count ... after the previous is done": the
            // refreshed global L-visited count rides on the L2E hub
            // sync (row sum then column sum = global sum). The measured
            // heuristic additionally piggybacks the visited degree mass
            // — one extra u64 on the same collective, never a new one.
            let l2e_counters = if self.measured() {
                vec![self.l_visited.count_ones(), self.local_l_visited_mass()]
            } else {
                vec![self.l_visited.count_ones()]
            };
            let refreshed = self.sync_hubs(ctx, "L2E", &l2e_counters);

            let (d_h2l, d_l2l) = if self.cfg.sub_iteration {
                // Fall back to one scalar collective only when there is
                // no hub sync to piggyback on (|E∪H| = 0).
                let counts = refreshed.unwrap_or_else(|| {
                    ctx.allreduce_with(Scope::World, "heur.counts", l2e_counters, None, |a, b| {
                        *a += b
                    })
                });
                visited_l = counts[0];
                let unvisited_l = self.total_l_connected.saturating_sub(visited_l);
                if self.measured() {
                    // The L-class unexplored mass from the piggybacked
                    // visited mass; frontier masses are loop-carried.
                    let um_l = self.class_mass_total[2].saturating_sub(counts[1]);
                    self.sub_masses[3] = (self.frontier_mass[1], um_l);
                    self.sub_masses[5] = (self.frontier_mass[2], um_l);
                    (
                        choose_measured(
                            &self.cfg,
                            self.prev_dirs[3],
                            self.frontier_mass[1],
                            um_l,
                            st.active_h,
                            dir.num_h() as u64,
                        ),
                        choose_measured(
                            &self.cfg,
                            self.prev_dirs[5],
                            self.frontier_mass[2],
                            um_l,
                            st.active_l,
                            self.total_l_connected,
                        ),
                    )
                } else {
                    (
                        choose_crossing(
                            &self.cfg,
                            st.active_h,
                            dir.num_h() as u64,
                            unvisited_l,
                            self.total_l_connected,
                        ),
                        choose_crossing(
                            &self.cfg,
                            st.active_l,
                            self.total_l_connected,
                            unvisited_l,
                            self.total_l_connected,
                        ),
                    )
                }
            } else {
                (dirs[3], dirs[5])
            };
            let mut final_dirs = dirs;
            final_dirs[3] = d_h2l;
            final_dirs[5] = d_l2l;

            self.cur_sub = 3;
            self.h2l(ctx, d_h2l);
            self.cur_sub = 4;
            self.l2h(ctx, dirs[4]);
            self.sync_hubs(ctx, "L2H", &[0]);
            self.cur_sub = 5;
            self.l2l(ctx, d_l2l);

            st.directions = final_dirs;
            st.scanned_edges = self.scanned;
            let masses = self.sub_masses;
            for ((slot, d), (m_f, m_u)) in self.sub_stats.iter_mut().zip(final_dirs).zip(masses) {
                slot.direction = d;
                slot.frontier_edges = m_f;
                slot.unexplored_edges = m_u;
            }
            // H2L/L2L decisions were re-derived mid-iteration from the
            // piggybacked visited count (sub-iteration mode only).
            self.sub_stats[3].refreshed = self.cfg.sub_iteration;
            self.sub_stats[5].refreshed = self.cfg.sub_iteration;
            st.subs = self.sub_stats;

            // ---- closing allreduce: next-frontier L count + visited L
            // count; doubles as the termination check (hub state is
            // replicated, so it needs no collective of its own).
            st.newly_e = self.hub_next.count_ones_range(0, num_e);
            st.newly_h = self.hub_next.count_ones_range(num_e, nh);
            let mut payload = vec![self.l_next.count_ones(), self.l_visited.count_ones()];
            if self.measured() {
                // Next iteration's frontier degree masses ride the same
                // closing allreduce (three extra u64s): each rank sums
                // its *owned* next-frontier degrees per class. The root's
                // own mass never enters (it was activated, not
                // discovered), uniformly on every rank.
                payload.extend(self.local_frontier_mass(&self.hub_next, &self.l_next));
            }
            let counts =
                ctx.allreduce_with(Scope::World, "heur.counts", payload, None, |a, b| *a += b);
            st.newly_l = counts[0];
            active_l = counts[0];
            visited_l = counts[1];
            if let Some(m) = counts.get(2..5) {
                self.frontier_mass = [m[0], m[1], m[2]];
                for (vm, fm) in self.visited_mass.iter_mut().zip(self.frontier_mass) {
                    *vm += fm;
                }
            }
            // Hysteresis state for the next iteration's decisions.
            self.prev_dirs = final_dirs;
            // The closing allreduce was this iteration's last
            // collective: the counter now names the first op *after*
            // the boundary (see `IterationStats::end_op`).
            st.end_op = ctx.collective_calls();

            std::mem::swap(&mut self.hub_curr, &mut self.hub_next);
            self.hub_next.clear();
            std::mem::swap(&mut self.l_curr, &mut self.l_next);
            self.l_next.clear();

            iterations.push(st);
            // Snapshot between the closing allreduce and the next
            // collective: faults only unwind at collectives, so every
            // rank checkpoints iteration `iter` or none does.
            if let Some(store) = checkpoints {
                self.save_checkpoint(
                    ctx,
                    store,
                    iter,
                    active_l,
                    visited_l,
                    &iterations,
                    base_sim_seconds + (ctx.now() - t_start).as_secs(),
                    (&base, &acc_start, &comm_start),
                );
            }
            done = self.hub_curr.is_zero() && active_l == 0;
            if !done && iter > MAX_ITERATIONS {
                // Replicated termination state: every rank takes this
                // branch on the same iteration.
                return Err(EngineError::NonTermination { iterations: iter });
            }
        }

        // ---- delayed reduction of delegated parents (§5) ----
        let reduced_hub_parents = ctx.allreduce_with(
            Scope::World,
            "reduce.parent",
            std::mem::take(&mut self.hub_parent),
            None,
            |a, b| *a = (*a).min(*b),
        );

        // ---- assemble owned parents + TEPS inputs ----
        let mut parents = Vec::with_capacity((range.end - range.start) as usize);
        let mut visited_degree_sum = 0u64;
        let mut visited_count = 0u64;
        for v in range.clone() {
            let li = (v - range.start) as usize;
            let p = match dir.hub_id(v) {
                Some(h) => reduced_hub_parents[h as usize],
                None => self.l_parent[li],
            };
            if p != INVALID_VERTEX {
                visited_degree_sum += self.part.owned_degrees[li] as u64;
                visited_count += 1;
            }
            parents.push(p);
        }
        let totals = ctx.allreduce_with(
            Scope::World,
            "reduce.teps",
            vec![visited_degree_sum, visited_count],
            None,
            |a, b| *a += b,
        );

        // Charge the resumed segment on top of the checkpointed base
        // (both zero when not resuming), so interrupted-then-resumed
        // runs report one continuous traversal.
        let mut times = base.times;
        times.merge(&ctx.accumulator().diff(&acc_start));
        let mut comm = base.comm;
        comm.merge(&ctx.comm_stats().diff(&comm_start));
        let stats = BfsRunStats {
            iterations,
            traversed_edges: totals[0] / 2,
            visited_vertices: totals[1],
            sim_seconds: base_sim_seconds + (ctx.now() - t_start).as_secs(),
            times,
            comm,
        };
        Ok(BfsOutput { parents, stats })
    }

    /// Store this rank's snapshot of the just-completed iteration:
    /// the loop-carried state (sealed with a checksum) plus the
    /// statistics a resume must inherit.
    #[allow(clippy::too_many_arguments)]
    fn save_checkpoint(
        &self,
        ctx: &mut RankCtx,
        store: &CheckpointStore,
        iter: u32,
        active_l: u64,
        visited_l: u64,
        iterations: &[IterationStats],
        sim_seconds: f64,
        (base, acc_start, comm_start): (&ResumeStats, &TimeAccumulator, &CommStats),
    ) {
        let state = CheckpointState {
            iter,
            active_l,
            visited_l,
            sim_seconds,
            frontier_mass: self.frontier_mass,
            visited_mass: self.visited_mass,
            prev_dirs: self.prev_dirs,
            hub_curr: self.hub_curr.clone(),
            hub_visited: self.hub_visited.clone(),
            hub_parent: self.hub_parent.clone(),
            l_curr: self.l_curr.clone(),
            l_visited: self.l_visited.clone(),
            l_parent: self.l_parent.clone(),
        };
        let mut times = base.times.clone();
        times.merge(&ctx.accumulator().diff(acc_start));
        let mut comm = base.comm.clone();
        comm.merge(&ctx.comm_stats().diff(comm_start));
        let stats = ResumeStats {
            iterations: iterations.to_vec(),
            times,
            comm,
        };
        store.save(ctx.rank(), &state, stats);
    }

    /// Initial per-iteration direction choices (H2L/L2L may be refreshed
    /// mid-iteration; see `run`). Under the measured heuristic this also
    /// records the `(m_f, m_u)` pair each decision saw into
    /// [`Engine::sub_masses`] for the statistics surface.
    fn select_directions(&mut self, st: &IterationStats, visited_l: u64) -> [Direction; 6] {
        let dir = &self.part.directory;
        let cfg = self.cfg;
        let num_e = dir.num_e() as u64;
        let num_h = dir.num_h() as u64;
        let nh = num_e + num_h;
        let total_l = self.total_l_connected;
        if self.measured() {
            // Beamer-style measured masses per class: the loop-carried
            // frontier masses against each destination class's
            // unexplored mass (total minus accumulated visited).
            let fm = self.frontier_mass;
            let um = [
                self.class_mass_total[0].saturating_sub(self.visited_mass[0]),
                self.class_mass_total[1].saturating_sub(self.visited_mass[1]),
                self.class_mass_total[2].saturating_sub(self.visited_mass[2]),
            ];
            if !cfg.sub_iteration {
                // Vanilla mode: one global measured decision.
                let m_f = fm[0] + fm[1] + fm[2];
                let m_u = um[0] + um[1] + um[2];
                let active = st.active_e + st.active_h + st.active_l;
                let d = choose_measured(&cfg, self.prev_dirs[0], m_f, m_u, active, nh + total_l);
                self.sub_masses = [(m_f, m_u); 6];
                return [d; 6];
            }
            // Per-component (source mass, destination unexplored mass,
            // source frontier count, source class size), §4.2 order.
            let pairs = [
                (fm[0] + fm[1], um[0] + um[1], st.active_e + st.active_h, nh),
                (fm[0], um[2], st.active_e, num_e),
                (fm[2], um[0], st.active_l, total_l),
                (fm[1], um[2], st.active_h, num_h),
                (fm[2], um[1], st.active_l, total_l),
                (fm[2], um[2], st.active_l, total_l),
            ];
            let mut dirs = [Direction::Push; 6];
            for (i, &(m_f, m_u, active, total)) in pairs.iter().enumerate() {
                dirs[i] = choose_measured(&cfg, self.prev_dirs[i], m_f, m_u, active, total);
                self.sub_masses[i] = (m_f, m_u);
            }
            return dirs;
        }
        if !cfg.sub_iteration {
            // Vanilla direction optimization: one decision for the whole
            // iteration from the global frontier density.
            let active = st.active_e + st.active_h + st.active_l;
            let total = nh + total_l;
            let d = if total > 0 && active as f64 / total as f64 > cfg.vanilla_alpha {
                Direction::Pull
            } else {
                Direction::Push
            };
            return [d; 6];
        }
        let unvisited_l = total_l.saturating_sub(visited_l);
        let unvisited_h = num_h - self.hub_visited.count_ones_range(num_e, nh);
        [
            // EH2EH: node-local, source class E∪H.
            choose_local(&cfg, st.active_e + st.active_h, nh),
            // E2L: node-local, source class E.
            choose_local(&cfg, st.active_e, num_e),
            // L2E: node-local, source class L.
            choose_local(&cfg, st.active_l, total_l),
            // H2L: crossing, H → L.
            choose_crossing(&cfg, st.active_h, num_h, unvisited_l, total_l),
            // L2H: crossing, L → H.
            choose_crossing(&cfg, st.active_l, total_l, unvisited_h, num_h),
            // L2L: crossing, L → L.
            choose_crossing(&cfg, st.active_l, total_l, unvisited_l, total_l),
        ]
    }

    /// Propagate this sub-iteration's hub discoveries to all delegates:
    /// OR-allreduce along the row (intra-supernode), then along the
    /// column (inter-supernode) — together a global dissemination, with
    /// each hop charged at its network tier.
    ///
    /// `counters` are summed globally alongside the bitmap words (row
    /// sums then column sums) and returned element-wise — the
    /// piggybacked counters that feed the mid-iteration direction
    /// refresh without a dedicated scalar collective. Returns `None`
    /// when there are no hubs (no sync happens).
    fn sync_hubs(&mut self, ctx: &mut RankCtx, tag: &str, counters: &[u64]) -> Option<Vec<u64>> {
        if self.hub_update.is_empty() {
            return None;
        }
        let op = format!("hubsync.{tag}");
        let (words, counts) = hub_sync_collective(ctx, &op, self.hub_update.words(), counters);
        // newly = update \ visited → next frontier; visited absorbs the
        // whole update. Both run on the wide 4-word kernels — the fused
        // `dst |= a & !b` form replaces the clone + and_not + or chain.
        wide::or_and_not_assign(self.hub_next.words_mut(), &words, self.hub_visited.words());
        wide::or_assign(self.hub_visited.words_mut(), &words);
        self.hub_update.clear();
        Some(counts)
    }

    /// Attribute `edges` scanned to the current sub-iteration and the
    /// iteration total.
    #[inline]
    fn note_edges(&mut self, edges: u64) {
        self.scanned += edges;
        self.sub_stats[self.cur_sub].scanned_edges += edges;
    }

    /// Attribute one OCS kernel's work to the current sub-iteration
    /// (times and counters sum across the sub-iteration's sorts).
    #[inline]
    fn note_kernel(&mut self, report: &sunbfs_sunway::KernelReport) {
        self.sub_stats[self.cur_sub].kernel.join_serial(report);
    }

    /// Attribute one worker-pool call to the current sub-iteration.
    #[inline]
    fn note_pool(&mut self, stats: pool::PoolStats) {
        self.sub_stats[self.cur_sub].pool.merge(&stats);
    }

    /// Record a locally discovered hub (delegate-local parent).
    #[inline]
    fn discover_hub(&mut self, h: u64, parent: u64) -> bool {
        if self.hub_visited.get(h) || self.hub_update.get(h) {
            return false;
        }
        self.hub_update.set(h);
        self.hub_parent[h as usize] = parent;
        true
    }

    /// Record a locally owned L discovery.
    #[inline]
    fn discover_local(&mut self, local: u64, parent: u64) -> bool {
        if self.l_visited.get(local) {
            return false;
        }
        self.l_visited.set(local);
        self.l_next.set(local);
        self.l_parent[local as usize] = parent;
        true
    }

    // ---------------------------------------------------------------
    // EH2EH — the 2D-partitioned core subgraph.
    // ---------------------------------------------------------------
    fn eh2eh(&mut self, ctx: &mut RankCtx, d: Direction) {
        let part = self.part;
        let dir = &part.directory;
        if dir.num_hubs() == 0 {
            return;
        }
        let my_row = ctx.row();
        let my_col = ctx.col();
        let nh = dir.num_hubs() as u64;
        match d {
            Direction::Push => {
                // Edge-aware vertex-cut balancing (§5): cut the frontier
                // by accumulated degree, charge the critical-path chunk.
                // Sources are this column's cyclic slice of the hub
                // space, gathered with the block-skipping wide walk.
                let mut frontier: Vec<u64> = Vec::new();
                let cols = self.cols as u64;
                wide::for_each_one(
                    self.hub_curr.words(),
                    nh,
                    0,
                    self.hub_curr.num_words(),
                    |s| {
                        if s % cols == my_col as u64 {
                            frontier.push(s);
                        }
                    },
                );
                let degrees: Vec<u64> =
                    frontier.iter().map(|&s| part.eh_by_src.degree(s)).collect();
                let cpes = ctx.machine().cpes_per_node();
                let max_chunk = balance::max_chunk_edges(&degrees, cpes);
                // Pool-chunked over frontier sources: each chunk scans
                // its slice into a candidate list; applying the lists in
                // chunk order replays the serial first-writer-wins
                // discovery order exactly.
                let (parts, pstats) =
                    pool::run_ranges(frontier.len() as u64, SCAN_GRAIN_ITEMS, |_, r| {
                        let mut edges = 0u64;
                        let mut cand: Vec<(u64, u64)> = Vec::new();
                        for &s in &frontier[r.start as usize..r.end as usize] {
                            let parent = dir.vertex_of(s as u32);
                            for &dst in part.eh_by_src.neighbors(s) {
                                edges += 1;
                                cand.push((dst, parent));
                            }
                        }
                        (edges, cand)
                    });
                let mut edges = 0u64;
                for (e, cand) in parts {
                    edges += e;
                    for (dst, parent) in cand {
                        self.discover_hub(dst, parent);
                    }
                }
                self.note_pool(pstats);
                self.note_edges(edges);
                costing::charge_balanced_push(
                    ctx,
                    "sub.EH2EH.push",
                    max_chunk,
                    frontier.len() as u64,
                );
            }
            Direction::Pull => {
                // CG-aware segmenting (§4.3): the source activeness bits
                // live in a SegmentedBitvec distributed over 64 CPE LDMs;
                // sources split into one segment per core group.
                let cgs = ctx.machine().cgs_per_node;
                let cpes_per_cg = ctx.machine().cpes_per_cg;
                // Segmenting requires the per-CG share of the activeness
                // bit vector to fit the LDM budget (half of each CPE's
                // scratchpad, leaving room for adjacency staging, §4.3);
                // otherwise fall back to GLD probes.
                let segment_fits = SegmentedBitvec::fits_budget(
                    nh.div_ceil(cgs as u64),
                    cpes_per_cg,
                    ctx.machine().ldm_bytes / 2,
                );
                let seg_vec = if self.cfg.segmenting && segment_fits {
                    Some(SegmentedBitvec::from_bitmap(&self.hub_curr, cpes_per_cg))
                } else {
                    None
                };
                // This column's source slice is cyclic; its k-th source
                // (slot s/cols) maps to core group slot*cgs/slots.
                let slots = nh.div_ceil(self.cols as u64).max(1);
                let cols = self.cols as u64;
                let seg_of =
                    move |s: u64| -> usize { ((s / cols) * cgs as u64 / slots) as usize % cgs };
                // Pool-chunked over this row's strided destination
                // sequence. Each destination is examined by exactly one
                // chunk, and the early-exit test reads only pre-scan
                // frontier/visited snapshots, so per-chunk discoveries
                // merged in chunk order are byte-identical to serial.
                let rows = self.rows as u64;
                let n_dst = if (my_row as u64) < nh {
                    (nh - my_row as u64).div_ceil(rows)
                } else {
                    0
                };
                let hub_visited = &self.hub_visited;
                let hub_update = &self.hub_update;
                let hub_curr = &self.hub_curr;
                let seg_vec = &seg_vec;
                let (parts, pstats) = pool::run_ranges(n_dst, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut probes = vec![0u64; cgs];
                    let mut found: Vec<(u64, u64)> = Vec::new();
                    for k in r {
                        let dst = my_row as u64 + k * rows;
                        if hub_visited.get(dst) || hub_update.get(dst) {
                            continue;
                        }
                        for &s in part.eh_by_dst.neighbors(dst) {
                            edges += 1;
                            probes[seg_of(s)] += 1;
                            let active = match seg_vec {
                                Some(sv) => sv.get(s),
                                None => hub_curr.get(s),
                            };
                            if active {
                                found.push((dst, dir.vertex_of(s as u32)));
                                break; // early exit
                            }
                        }
                    }
                    (edges, probes, found)
                });
                let mut probes = vec![0u64; cgs];
                let mut edges = 0u64;
                for (e, p, found) in parts {
                    edges += e;
                    for (slot, add) in probes.iter_mut().zip(&p) {
                        *slot += *add;
                    }
                    for (dst, parent) in found {
                        self.discover_hub(dst, parent);
                    }
                }
                self.note_pool(pstats);
                self.note_edges(edges);
                costing::charge_eh_pull(ctx, "sub.EH2EH.pull", edges, &probes, self.cfg.segmenting);
            }
        }
    }

    // ---------------------------------------------------------------
    // E2L — E adjacency attached to L owners; fully node-local.
    // ---------------------------------------------------------------
    fn e2l(&mut self, ctx: &mut RankCtx, d: Direction) {
        let part = self.part;
        let dir = &part.directory;
        let num_e = dir.num_e() as u64;
        if num_e == 0 || self.total_el == 0 {
            return;
        }
        let range = part.owned_range();
        let mut edges = 0u64;
        match d {
            Direction::Push => {
                let mut frontier: Vec<u64> = Vec::new();
                wide::for_each_one(
                    self.hub_curr.words(),
                    num_e,
                    0,
                    num_e.div_ceil(64) as usize,
                    |e| frontier.push(e),
                );
                let (parts, pstats) =
                    pool::run_ranges(frontier.len() as u64, SCAN_GRAIN_ITEMS, |_, r| {
                        let mut edges = 0u64;
                        let mut cand: Vec<(u64, u64)> = Vec::new();
                        for &e in &frontier[r.start as usize..r.end as usize] {
                            if part.el_by_hub.degree(e) == 0 {
                                continue;
                            }
                            let parent = dir.vertex_of(e as u32);
                            for &l in part.el_by_hub.neighbors(e) {
                                edges += 1;
                                cand.push((l - range.start, parent));
                            }
                        }
                        (edges, cand)
                    });
                for (e, cand) in parts {
                    edges += e;
                    for (li, parent) in cand {
                        self.discover_local(li, parent);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.E2L.push", edges);
            }
            Direction::Pull => {
                // Destination-partitioned: each owned L index belongs to
                // exactly one chunk, so snapshot reads + chunk-order
                // merge reproduce the serial scan bit for bit.
                let local_n = range.end - range.start;
                let l_visited = &self.l_visited;
                let hub_curr = &self.hub_curr;
                let (parts, pstats) = pool::run_ranges(local_n, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut found: Vec<(u64, u64)> = Vec::new();
                    // Inverted wide walk over the visited bits: only
                    // unvisited locals in the chunk are examined.
                    wide::for_each_zero(l_visited.words(), local_n, r.start, r.end, |li| {
                        let l = range.start + li;
                        if part.el_by_local.degree(l) == 0 {
                            return;
                        }
                        for &e in part.el_by_local.neighbors(l) {
                            edges += 1;
                            if hub_curr.get(e) {
                                found.push((li, dir.vertex_of(e as u32)));
                                break; // early exit
                            }
                        }
                    });
                    (edges, found)
                });
                for (e, found) in parts {
                    edges += e;
                    for (li, parent) in found {
                        self.discover_local(li, parent);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.E2L.pull", edges);
            }
        }
        self.note_edges(edges);
    }

    // ---------------------------------------------------------------
    // L2E — same storage, reverse roles; hub updates via delegates.
    // ---------------------------------------------------------------
    fn l2e(&mut self, ctx: &mut RankCtx, d: Direction) {
        let part = self.part;
        let dir = &part.directory;
        let num_e = dir.num_e() as u64;
        if num_e == 0 || self.total_el == 0 {
            return;
        }
        let range = part.owned_range();
        let mut edges = 0u64;
        match d {
            Direction::Push => {
                // Pool-chunked on frontier bitmap *words*: workers claim
                // 64-vertex blocks; window order = ascending bit order,
                // so chunk-order merge replays the serial scan.
                let l_curr = &self.l_curr;
                let local_n = range.end - range.start;
                let (parts, pstats) =
                    pool::run_ranges(l_curr.num_words() as u64, SCAN_GRAIN_WORDS, |_, r| {
                        let mut edges = 0u64;
                        let mut cand: Vec<(u64, u64)> = Vec::new();
                        wide::for_each_one(
                            l_curr.words(),
                            local_n,
                            r.start as usize,
                            r.end as usize,
                            |li| {
                                let l = range.start + li;
                                if part.el_by_local.degree(l) == 0 {
                                    return;
                                }
                                for &e in part.el_by_local.neighbors(l) {
                                    edges += 1;
                                    cand.push((e, l));
                                }
                            },
                        );
                        (edges, cand)
                    });
                for (e, cand) in parts {
                    edges += e;
                    for (h, l) in cand {
                        self.discover_hub(h, l);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2E.push", edges);
            }
            Direction::Pull => {
                let hub_visited = &self.hub_visited;
                let hub_update = &self.hub_update;
                let l_curr = &self.l_curr;
                let (parts, pstats) = pool::run_ranges(num_e, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut found: Vec<(u64, u64)> = Vec::new();
                    // Fused `visited | update` skip test, one inverted
                    // word walk over the chunk's E hubs.
                    wide::for_each_unset_pair(
                        hub_visited.words(),
                        hub_update.words(),
                        num_e,
                        r.start,
                        r.end,
                        |e| {
                            if part.el_by_hub.degree(e) == 0 {
                                return;
                            }
                            for &l in part.el_by_hub.neighbors(e) {
                                edges += 1;
                                if l_curr.get(l - range.start) {
                                    found.push((e, l));
                                    break; // early exit (per-rank)
                                }
                            }
                        },
                    );
                    (edges, found)
                });
                for (e, found) in parts {
                    edges += e;
                    for (h, l) in found {
                        self.discover_hub(h, l);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2E.pull", edges);
            }
        }
        self.note_edges(edges);
    }

    // ---------------------------------------------------------------
    // H2L — stored at row/col intersections; push messages stay intra-row.
    // ---------------------------------------------------------------
    fn h2l(&mut self, ctx: &mut RankCtx, d: Direction) {
        if self.total_h2l == 0 {
            return; // globally empty: no rank runs the exchange
        }
        let part = self.part;
        let dir = &part.directory;
        let topo = ctx.topology();
        let num_e = dir.num_e() as u64;
        let nh = dir.num_hubs() as u64;
        let mut edges = 0u64;
        let mut msgs: Vec<(u64, u64)> = Vec::new();
        match d {
            Direction::Push => {
                if num_e < nh {
                    // Pool-chunked on the H word window of the hub
                    // frontier bitmap; the first window filters out the
                    // E bits sharing its boundary word.
                    let hub_curr = &self.hub_curr;
                    let wstart = num_e / 64;
                    let wend = nh.div_ceil(64);
                    let (parts, pstats) =
                        pool::run_ranges(wend - wstart, SCAN_GRAIN_WORDS, |_, r| {
                            let mut edges = 0u64;
                            let mut out: Vec<(u64, u64)> = Vec::new();
                            let (ws, we) = ((wstart + r.start) as usize, (wstart + r.end) as usize);
                            wide::for_each_one(hub_curr.words(), nh, ws, we, |h| {
                                if h < num_e || part.h2l_by_hub.degree(h) == 0 {
                                    return;
                                }
                                let parent = dir.vertex_of(h as u32);
                                for &l in part.h2l_by_hub.neighbors(h) {
                                    edges += 1;
                                    out.push((l, parent));
                                }
                            });
                            (edges, out)
                        });
                    for (e, out) in parts {
                        edges += e;
                        msgs.extend(out);
                    }
                    self.note_pool(pstats);
                }
                costing::charge_scan(ctx, "sub.H2L.push", edges);
                self.exchange_and_apply_row(ctx, msgs, "H2L", "sub.H2L.push");
            }
            Direction::Pull => {
                // Destination (L) visited bits must be visible along the
                // row where the edges live: gather the row's bitmaps.
                let row_visited = self.gather_row_visited(ctx);
                let row_range = part.row_range(&topo);
                let hub_curr = &self.hub_curr;
                let row_visited = &row_visited;
                let row_n = row_range.end - row_range.start;
                let (parts, pstats) = pool::run_ranges(row_n, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut out: Vec<(u64, u64)> = Vec::new();
                    // Inverted wide walk over the row-visited bits; the
                    // degree filter moves inside (same examined set:
                    // unvisited ∧ degree > 0).
                    wide::for_each_zero(row_visited.words(), row_n, r.start, r.end, |off| {
                        let l = row_range.start + off;
                        if part.h2l_by_local.degree(l) == 0 {
                            return;
                        }
                        for &h in part.h2l_by_local.neighbors(l) {
                            edges += 1;
                            if hub_curr.get(h) {
                                out.push((l, dir.vertex_of(h as u32)));
                                break; // early exit at the edge's location
                            }
                        }
                    });
                    (edges, out)
                });
                for (e, out) in parts {
                    edges += e;
                    msgs.extend(out);
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.H2L.pull", edges);
                self.exchange_and_apply_row(ctx, msgs, "H2L", "sub.H2L.pull");
            }
        }
        self.note_edges(edges);
    }

    /// Bucket `(dest L, parent)` messages by destination column with
    /// OCS-RMA, exchange them intra-row, and apply at the owners.
    fn exchange_and_apply_row(
        &mut self,
        ctx: &mut RankCtx,
        msgs: Vec<(u64, u64)>,
        comm_tag: &str,
        cost_category: &str,
    ) {
        let dist = self.part.dist;
        let topo = ctx.topology();
        let cols = self.cols;
        let machine = *ctx.machine();
        let (buckets, report) = ocs_sort_rma(
            &machine,
            &OcsConfig::default(),
            &msgs,
            cols,
            machine.cgs_per_node,
            |&(l, _)| topo.col_of(dist.owner(l)),
        );
        ctx.charge(cost_category, report.time);
        self.note_kernel(&report);
        let received = ctx.alltoallv(Scope::Row, &format!("comm.alltoallv.{comm_tag}"), buckets);
        let msgs: Vec<(u64, u64)> = received.into_iter().flatten().collect();
        self.apply_l_messages(ctx, msgs, cost_category);
    }

    /// Two-stage destination update (§4.4): arriving messages are
    /// coarse-sorted into fixed-length vertex ranges with OCS-RMA, then
    /// each range is updated in LDM by its owning consumer — no atomic
    /// bit-sets against main memory.
    fn apply_l_messages(&mut self, ctx: &mut RankCtx, msgs: Vec<(u64, u64)>, category: &str) {
        if msgs.is_empty() {
            return;
        }
        let range = self.part.owned_range();
        let span = (range.end - range.start).max(1);
        let machine = *ctx.machine();
        let ranges = 32u64;
        let (buckets, report) = ocs_sort_rma(
            &machine,
            &OcsConfig::default(),
            &msgs,
            ranges as usize,
            machine.cgs_per_node,
            |&(l, _)| range_bucket(l - range.start, span, ranges),
        );
        ctx.charge(category, report.time);
        self.note_kernel(&report);
        for bucket in buckets {
            for (l, parent) in bucket {
                self.discover_local(l - range.start, parent);
            }
        }
    }

    /// Allgather the row's owned-visited bitmaps into one bitmap over
    /// the row's vertex interval.
    fn gather_row_visited(&self, ctx: &mut RankCtx) -> Bitmap {
        let topo = ctx.topology();
        let dist = self.part.dist;
        let my_row = topo.row_of(ctx.rank());
        let row_range = sunbfs_part::row_vertex_range(&dist, &topo, my_row);
        let words = self.l_visited.words().to_vec();
        let gathered = ctx.allgatherv(Scope::Row, "comm.allgather.H2L", words);
        let mut row_visited = Bitmap::new(row_range.end - row_range.start);
        for (pos, words) in gathered.into_iter().enumerate() {
            let member_rank = topo.rank_at(my_row, pos);
            let member_range = dist.range_of(member_rank);
            let len = member_range.end - member_range.start;
            let mut bm = Bitmap::new(len);
            bm.words_mut().copy_from_slice(&words);
            for bit in bm.iter_ones() {
                row_visited.set(member_range.start - row_range.start + bit);
            }
        }
        row_visited
    }

    // ---------------------------------------------------------------
    // L2H — stored at L's owner; hub delegates absorb the updates.
    // ---------------------------------------------------------------
    fn l2h(&mut self, ctx: &mut RankCtx, d: Direction) {
        let part = self.part;
        let dir = &part.directory;
        let num_e = dir.num_e() as u64;
        let nh = dir.num_hubs() as u64;
        if num_e == nh || self.total_lh == 0 {
            return; // no H vertices (or no L↔H edges anywhere)
        }
        let range = part.owned_range();
        let mut edges = 0u64;
        match d {
            Direction::Push => {
                let l_curr = &self.l_curr;
                let local_n = range.end - range.start;
                let (parts, pstats) =
                    pool::run_ranges(l_curr.num_words() as u64, SCAN_GRAIN_WORDS, |_, r| {
                        let mut edges = 0u64;
                        let mut cand: Vec<(u64, u64)> = Vec::new();
                        wide::for_each_one(
                            l_curr.words(),
                            local_n,
                            r.start as usize,
                            r.end as usize,
                            |li| {
                                let l = range.start + li;
                                if part.lh_by_local.degree(l) == 0 {
                                    return;
                                }
                                for &h in part.lh_by_local.neighbors(l) {
                                    edges += 1;
                                    cand.push((h, l));
                                }
                            },
                        );
                        (edges, cand)
                    });
                for (e, cand) in parts {
                    edges += e;
                    for (h, l) in cand {
                        self.discover_hub(h, l);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2H.push", edges);
            }
            Direction::Pull => {
                let hub_visited = &self.hub_visited;
                let hub_update = &self.hub_update;
                let l_curr = &self.l_curr;
                let (parts, pstats) = pool::run_ranges(nh - num_e, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut found: Vec<(u64, u64)> = Vec::new();
                    // The chunk's H range in absolute hub indices, with
                    // the `visited | update` skip test fused.
                    wide::for_each_unset_pair(
                        hub_visited.words(),
                        hub_update.words(),
                        nh,
                        num_e + r.start,
                        num_e + r.end,
                        |h| {
                            if part.lh_by_hub.degree(h) == 0 {
                                return;
                            }
                            for &l in part.lh_by_hub.neighbors(h) {
                                edges += 1;
                                if l_curr.get(l - range.start) {
                                    found.push((h, l));
                                    break; // early exit (per-rank)
                                }
                            }
                        },
                    );
                    (edges, found)
                });
                for (e, found) in parts {
                    edges += e;
                    for (h, l) in found {
                        self.discover_hub(h, l);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2H.pull", edges);
            }
        }
        self.note_edges(edges);
    }

    // ---------------------------------------------------------------
    // L2L — vanilla 1D with hierarchical forwarding (§4.4).
    // ---------------------------------------------------------------
    fn l2l(&mut self, ctx: &mut RankCtx, d: Direction) {
        if self.total_l2l == 0 {
            return; // globally empty: no rank runs the exchanges
        }
        let part = self.part;
        let dist = part.dist;
        let topo = ctx.topology();
        let range = part.owned_range();
        let machine = *ctx.machine();
        let mut edges = 0u64;
        match d {
            Direction::Push => {
                // Generate (dest, parent) messages from the frontier,
                // pool-chunked on frontier bitmap words.
                let l_curr = &self.l_curr;
                let local_n = range.end - range.start;
                let (parts, pstats) =
                    pool::run_ranges(l_curr.num_words() as u64, SCAN_GRAIN_WORDS, |_, r| {
                        let mut edges = 0u64;
                        let mut out: Vec<(u64, u64)> = Vec::new();
                        wide::for_each_one(
                            l_curr.words(),
                            local_n,
                            r.start as usize,
                            r.end as usize,
                            |li| {
                                let l = range.start + li;
                                if part.l2l.degree(l) == 0 {
                                    return;
                                }
                                for &v in part.l2l.neighbors(l) {
                                    edges += 1;
                                    out.push((v, l));
                                }
                            },
                        );
                        (edges, out)
                    });
                let mut msgs: Vec<(u64, u64)> = Vec::new();
                for (e, out) in parts {
                    edges += e;
                    msgs.extend(out);
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2L.push", edges);
                // Hop 1: sort by the forwarding node — the intersection
                // of our column and the destination's row — and exchange
                // along the column.
                let (col_buckets, rep1) = ocs_sort_rma(
                    &machine,
                    &OcsConfig::default(),
                    &msgs,
                    self.rows,
                    machine.cgs_per_node,
                    |&(v, _)| topo.row_of(dist.owner(v)),
                );
                ctx.charge("sub.L2L.push", rep1.time);
                self.note_kernel(&rep1);
                let forwarded: Vec<(u64, u64)> = ctx
                    .alltoallv(Scope::Col, "comm.alltoallv.L2L", col_buckets)
                    .into_iter()
                    .flatten()
                    .collect();
                // Hop 2: the forwarding node sorts by final destination
                // and exchanges along its row.
                let (row_buckets, rep2) = ocs_sort_rma(
                    &machine,
                    &OcsConfig::default(),
                    &forwarded,
                    self.cols,
                    machine.cgs_per_node,
                    |&(v, _)| topo.col_of(dist.owner(v)),
                );
                ctx.charge("sub.L2L.push", rep2.time);
                self.note_kernel(&rep2);
                let received = ctx.alltoallv(Scope::Row, "comm.alltoallv.L2L", row_buckets);
                let msgs: Vec<(u64, u64)> = received.into_iter().flatten().collect();
                self.apply_l_messages(ctx, msgs, "sub.L2L.push");
            }
            Direction::Pull => {
                // Query/confirm two-phase: unvisited locals ask the
                // owners of their neighbors whether those are in the
                // frontier. No remote early exit — the 1D limitation the
                // paper notes (§2.1.2).
                let p = ctx.nranks();
                let l_visited = &self.l_visited;
                let local_n = range.end - range.start;
                let (parts, pstats) = pool::run_ranges(local_n, SCAN_GRAIN_ITEMS, |_, r| {
                    let mut edges = 0u64;
                    let mut out: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
                    wide::for_each_zero(l_visited.words(), local_n, r.start, r.end, |li| {
                        let l = range.start + li;
                        if part.l2l.degree(l) == 0 {
                            return;
                        }
                        for &u in part.l2l.neighbors(l) {
                            edges += 1;
                            out[dist.owner(u)].push((u, l));
                        }
                    });
                    (edges, out)
                });
                let mut queries: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
                for (e, out) in parts {
                    edges += e;
                    for (dst, batch) in queries.iter_mut().zip(out) {
                        dst.extend(batch);
                    }
                }
                self.note_pool(pstats);
                costing::charge_scan(ctx, "sub.L2L.pull", edges);
                let incoming = ctx.alltoallv(Scope::World, "comm.alltoallv.L2L", queries);
                let mut replies: Vec<Vec<(u64, u64)>> = vec![Vec::new(); p];
                let mut checked = 0u64;
                for batch in incoming {
                    for (u, l) in batch {
                        checked += 1;
                        if self.l_curr.get(u - range.start) {
                            replies[dist.owner(l)].push((l, u));
                        }
                    }
                }
                costing::charge_apply(ctx, "sub.L2L.pull", checked);
                let confirmed = ctx.alltoallv(Scope::World, "comm.alltoallv.L2L", replies);
                let msgs: Vec<(u64, u64)> = confirmed.into_iter().flatten().collect();
                self.apply_l_messages(ctx, msgs, "sub.L2L.pull");
            }
        }
        self.note_edges(edges);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_common::MachineConfig;
    use sunbfs_net::{Cluster, CommOpStats, MeshShape};

    #[test]
    fn range_bucket_in_bounds_for_spans_below_ranges() {
        // The fixed 32-range coarse sort must stay in-bounds even when
        // a rank owns fewer than 32 vertices.
        for span in 1..32u64 {
            for offset in 0..span {
                let b = range_bucket(offset, span, 32);
                assert!(b < 32, "span {span} offset {offset} -> bucket {b}");
            }
        }
    }

    #[test]
    fn range_bucket_is_monotone_and_covers_all_ranges() {
        for span in [1u64, 5, 31, 32, 33, 100, 1 << 20] {
            let mut prev = 0usize;
            for offset in 0..span.min(4096) {
                let b = range_bucket(offset, span, 32);
                assert!(b >= prev, "bucket must not decrease along the span");
                prev = b;
            }
            if (32..=4096).contains(&span) {
                let used: std::collections::BTreeSet<usize> =
                    (0..span).map(|o| range_bucket(o, span, 32)).collect();
                assert_eq!(used.len(), 32, "span {span} must use all 32 ranges");
            }
        }
    }

    #[test]
    fn piggybacked_counter_sums_globally() {
        // The sync_hubs payload: bitmap words OR-reduced, the trailing
        // counter summed — row hop then column hop gives the global sum
        // and the global union on every rank.
        let c = Cluster::new(MeshShape::new(2, 3), MachineConfig::new_sunway());
        let out = c.run(|ctx| {
            let mut words = vec![0u64; 2];
            words[0] |= 1 << ctx.rank();
            // Two trailing counters (the measured-heuristic shape): both
            // must sum independently while the words OR.
            hub_sync_collective(
                ctx,
                "hubsync.test",
                &words,
                &[ctx.rank() as u64 + 1, 10 * ctx.rank() as u64],
            )
        });
        let union: u64 = (0..6).map(|r| 1u64 << r).sum();
        for (words, counts) in out {
            assert_eq!(counts, vec![21, 150], "element-wise sums over 6 ranks");
            assert_eq!(words, vec![union, 0]);
        }
    }

    #[test]
    fn piggybacked_counter_rides_the_bitmap_collective() {
        // One row + one column collective carry words AND counter: no
        // extra scalar allreduce appears, and each payload is exactly
        // nwords+1 u64s.
        let c = Cluster::new(MeshShape::new(2, 2), MachineConfig::new_sunway());
        let out = c.run(|ctx| {
            let words = vec![0u64; 4];
            hub_sync_collective(ctx, "hubsync.t", &words, &[7]);
            ctx.take_comm_stats()
        });
        for stats in out {
            assert_eq!(
                stats.get(Scope::Row, "hubsync.t"),
                CommOpStats {
                    count: 1,
                    bytes: 40
                }
            );
            assert_eq!(
                stats.get(Scope::Col, "hubsync.t"),
                CommOpStats {
                    count: 1,
                    bytes: 40
                }
            );
            assert_eq!(
                stats.total_with_prefix("world/").count,
                0,
                "no world-scope fallback"
            );
        }
    }

    #[test]
    fn engine_error_formats() {
        let e = EngineError::NonTermination { iterations: 1001 };
        assert!(e.to_string().contains("1001 iterations"));
    }
}
