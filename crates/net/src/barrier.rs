//! A poisonable rendezvous barrier.
//!
//! `std::sync::Barrier` deadlocks the whole cluster when one rank
//! panics mid-collective: the survivors wait forever. This barrier adds
//! *poisoning* — a panicking rank (or the runtime on its behalf) calls
//! [`PoisonBarrier::poison`], which wakes every waiter and makes every
//! subsequent `wait` panic, so a single rank failure tears the run down
//! deterministically instead of hanging the test suite.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// The typed unwind payload a poisoned [`PoisonBarrier::wait`] raises:
/// the cluster runtime downcasts it to classify the failure as
/// collateral teardown (some *other* rank was the root cause) rather
/// than a rank-local bug.
#[derive(Clone, Copy, Debug)]
pub struct BarrierPoisoned;

impl std::fmt::Display for BarrierPoisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster barrier poisoned: another rank failed")
    }
}

#[derive(Debug)]
struct State {
    count: usize,
    generation: u64,
    poisoned: bool,
}

/// A reusable sense-counting barrier for a fixed number of parties,
/// with explicit poisoning.
#[derive(Debug)]
pub struct PoisonBarrier {
    parties: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl PoisonBarrier {
    /// Lock the state, ignoring std mutex poisoning: a rank that panics
    /// while holding the lock poisons the std mutex, but this barrier
    /// tracks failure through its own `poisoned` flag so teardown paths
    /// (which must not panic again) can still make progress.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Barrier for `parties` participants (must be ≥ 1).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1);
        PoisonBarrier {
            parties,
            state: Mutex::new(State {
                count: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until all parties arrive.
    ///
    /// # Panics
    /// Panics with a [`BarrierPoisoned`] payload if the barrier is (or
    /// becomes) poisoned.
    pub fn wait(&self) {
        let mut st = self.lock_state();
        if st.poisoned {
            drop(st);
            std::panic::panic_any(BarrierPoisoned);
        }
        st.count += 1;
        if st.count == self.parties {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cv.notify_all();
            return;
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        // Poison only fails waiters whose generation did NOT complete.
        // If the generation advanced, this rendezvous succeeded — a
        // poison raised concurrently (or just after) belongs to the
        // *next* wait, which will observe it at entry. Failing here
        // would retroactively kill a rank whose collective finished,
        // e.g. before it can checkpoint the iteration it completed.
        if st.generation == gen {
            drop(st);
            std::panic::panic_any(BarrierPoisoned);
        }
    }

    /// Poison the barrier, waking and failing all current and future
    /// waiters. Idempotent.
    pub fn poison(&self) {
        let mut st = self.lock_state();
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// True once poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.lock_state().poisoned
    }

    /// Clear poison and arrival state so the barrier can host a fresh
    /// run. Only sound when no thread is currently blocked in
    /// [`Self::wait`] — the cluster runtime calls it between runs,
    /// after every rank thread has been joined.
    pub fn reset(&self) {
        let mut st = self.lock_state();
        st.poisoned = false;
        st.count = 0;
        st.generation = st.generation.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = PoisonBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }

    #[test]
    fn synchronizes_phases() {
        let b = Arc::new(PoisonBarrier::new(4));
        let phase = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = Arc::clone(&b);
                let phase = Arc::clone(&phase);
                s.spawn(move || {
                    for p in 0..50 {
                        // Everyone must observe the same phase inside a
                        // barrier-delimited window.
                        assert_eq!(phase.load(Ordering::SeqCst), p);
                        b.wait();
                        phase
                            .compare_exchange(p, p + 1, Ordering::SeqCst, Ordering::SeqCst)
                            .ok();
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(phase.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn poison_wakes_waiters() {
        let b = Arc::new(PoisonBarrier::new(2));
        let waiter = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait()));
                r.is_err()
            })
        };
        // Give the waiter time to block, then poison instead of joining.
        std::thread::sleep(std::time::Duration::from_millis(50));
        b.poison();
        assert!(waiter.join().unwrap(), "poisoned wait must panic");
    }

    #[test]
    fn poison_after_release_does_not_kill_a_completed_waiter() {
        // The last arriver returns immediately and poisons before the
        // other party has woken from the condvar: that party's
        // generation completed, so it must return success — the poison
        // belongs to the next wait.
        for _ in 0..100 {
            let b = Arc::new(PoisonBarrier::new(2));
            let waiter = {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait())).is_ok()
                })
            };
            std::thread::sleep(std::time::Duration::from_millis(1));
            b.wait();
            b.poison();
            assert!(
                waiter.join().unwrap(),
                "a waiter whose generation completed must not see the poison"
            );
        }
    }

    #[test]
    fn wait_after_poison_panics_immediately() {
        let b = PoisonBarrier::new(2);
        b.poison();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.wait()))
            .expect_err("poisoned wait must panic");
        assert!(
            err.downcast_ref::<BarrierPoisoned>().is_some(),
            "poison panic must carry the typed BarrierPoisoned payload"
        );
    }

    #[test]
    fn reset_heals_a_poisoned_barrier() {
        let b = PoisonBarrier::new(1);
        b.poison();
        assert!(b.is_poisoned());
        b.reset();
        assert!(!b.is_poisoned());
        // Usable again after reset.
        b.wait();
        b.wait();
    }
}
