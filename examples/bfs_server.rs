//! `bfs_server` — the BFS query service, over stdin or TCP.
//!
//! Both transports speak the same newline-delimited-JSON protocol
//! (`sunbfs::serve::proto`, documented in `docs/SERVE.md`): one JSON
//! object per input line, one (or more) JSON objects per output line,
//! every reply carrying a `"reply"` discriminator. Malformed input is
//! a typed `{"reply":"error","detail":...,"kind":...}` refusal and
//! never kills the server.
//!
//! **Stdin mode** (no arguments) — the single-client loop:
//!
//! ```text
//! {"cmd":"load","scale":10,"ranks":4}          build the resident graph
//! {"cmd":"query","root":5}                     submit one root, tick once
//! {"cmd":"query","root":5,"deadline_ticks":3}  ... with a deadline budget
//! {"cmd":"batch","roots":[1,2,3]}              submit many, drain
//! {"cmd":"update","edges":[[0,9],[3,7]]}       commit edge inserts, bump epoch
//! {"cmd":"health"}                             health state + transitions
//! {"cmd":"stats"}                              full ServeReport JSON
//! {"cmd":"drain"}                              flush everything pending
//! {"cmd":"shutdown"}                           drain, reply, exit 0
//! ```
//!
//! `load` knobs (all optional): `scale` (10), `ranks` (4),
//! `edge_factor` (16), `e_threshold` (256), `h_threshold` (64),
//! `seed` (42), `queue_capacity` (256), `batch_max` (64),
//! `flush_deadline` (4), `baseline` (false), `path` (a `sunbfs-store`
//! file to open instead of rebuilding). A mistyped knob is a typed
//! refusal, never a silent fall-back to the default value. EOF on
//! stdin exits 0.
//!
//! **TCP mode** (`--tcp ADDR`) — the concurrent server: the graph is
//! built (or opened via `--path`) at startup, then served to many
//! connections at once (`docs/SERVE.md`). `load` over the wire is
//! refused. The process prints one `{"event":"listening",...}` line
//! when ready and one `{"event":"shutdown",...}` line (transport
//! summary + serve report) after a graceful drain.
//!
//! ```text
//! cargo run --release --example bfs_server -- --tcp 127.0.0.1:0 \
//!     --scale 14 --ranks 4 --queue-capacity 48 --flush-deadline 2
//! ```
//!
//! Graph knobs mirror the `load` command (`--scale`, `--ranks`,
//! `--edge-factor`, `--e-threshold`, `--h-threshold`, `--seed`,
//! `--queue-capacity`, `--batch-max`, `--flush-deadline`,
//! `--baseline`, `--path FILE`); transport knobs are `--max-conns`,
//! `--inflight-cap`, `--read-timeout-ms`, `--write-timeout-ms`,
//! `--tick-ms`, `--shutdown-grace-ms`. Chaos knobs arm a seeded live
//! fault schedule against the resident cluster (`docs/FAULTS.md`):
//! `--chaos-every N` (one fault per N executed queries, 0 = off,
//! forces an armed fault plan), `--chaos-seed N`,
//! `--chaos-max-events N` (0 = unbounded). Unknown flags exit 2.
//!
//! A panicked service or accept thread still produces the final
//! `{"event":"shutdown",...}` line — with a `join_error` field — and
//! exits 1 instead of taking the summary down with it.

use std::io::BufRead;
use std::time::Duration;

use sunbfs::common::JsonValue;
use sunbfs::net::FaultPlan;
use sunbfs::serve::proto::{self, LoadRequest, Request};
use sunbfs::serve::{BfsService, ChaosConfig, GraphSession, NetConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        run_stdin();
        return;
    }
    match Cli::parse(&args) {
        Ok(cli) => run_tcp(cli),
        Err(msg) => {
            eprintln!("bfs_server: {msg}");
            eprintln!("usage: bfs_server                 (stdin mode)");
            eprintln!(
                "       bfs_server --tcp ADDR [--scale N] [--ranks N] [--edge-factor N] \
                 [--e-threshold N] [--h-threshold N] [--seed N] [--queue-capacity N] \
                 [--batch-max N] [--flush-deadline N] [--baseline] [--path FILE] \
                 [--max-conns N] [--inflight-cap N] [--read-timeout-ms N] \
                 [--write-timeout-ms N] [--tick-ms N] [--shutdown-grace-ms N] \
                 [--chaos-every N] [--chaos-seed N] [--chaos-max-events N]"
            );
            std::process::exit(2);
        }
    }
}

/// Build the resident session from a validated load request, honoring
/// `SUNBFS_FAULT_PLAN` like the benchmark driver does. With `armed`,
/// an absent env plan becomes [`FaultPlan::armed`] so live chaos can
/// inject faults later without desyncing payload framing.
fn build_session(load: &LoadRequest, armed: bool) -> Result<GraphSession, String> {
    let plan = FaultPlan::from_env()
        .map_err(|e| format!("bad SUNBFS_FAULT_PLAN: {e}"))?
        .unwrap_or_else(|| {
            if armed {
                FaultPlan::armed()
            } else {
                FaultPlan::none()
            }
        });
    let session = match &load.path {
        Some(path) => GraphSession::open_or_build(std::path::Path::new(path), load.session, plan),
        None => GraphSession::load(load.session, plan).map_err(Into::into),
    };
    session.map_err(|e| format!("load failed: {e}"))
}

// ---------------------------------------------------------------------------
// stdin mode
// ---------------------------------------------------------------------------

fn run_stdin() {
    let stdin = std::io::stdin();
    let mut service: Option<BfsService> = None;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (replies, done) = handle_line(&mut service, &line);
        for reply in replies {
            println!("{}", reply.render());
        }
        if done {
            break;
        }
    }
}

fn no_graph() -> JsonValue {
    proto::error_reply(
        "no graph loaded (send {\"cmd\":\"load\"} first)",
        "no_graph",
    )
}

/// Dispatch one input line to its replies; `true` means shutdown.
fn handle_line(service: &mut Option<BfsService>, line: &str) -> (Vec<JsonValue>, bool) {
    let req = match proto::parse_request(line) {
        Ok(r) => r,
        Err(e) => return (vec![proto::proto_error_reply(&e)], false),
    };
    match req {
        Request::Load(load) => {
            let reply = match build_session(&load, false) {
                Ok(session) => {
                    let loaded = proto::loaded_reply(&session);
                    *service = Some(BfsService::new(session, load.serve));
                    loaded
                }
                Err(detail) => proto::error_reply(detail, "load_failed"),
            };
            (vec![reply], false)
        }
        Request::Query {
            root,
            deadline_ticks,
        } => {
            let Some(svc) = service.as_mut() else {
                return (vec![no_graph()], false);
            };
            let mut replies = Vec::new();
            match svc.submit_with_deadline(root, deadline_ticks) {
                Ok(id) => {
                    replies.push(proto::accepted_reply(id.0, root, svc.queue_depth()));
                }
                Err(reason) => return (vec![proto::rejection_reply(root, &reason)], false),
            }
            // One tick per submission: full batches flush immediately;
            // partial batches age toward the deadline.
            for r in svc.tick() {
                replies.push(proto::result_reply(&r));
            }
            (replies, false)
        }
        Request::Batch {
            roots,
            deadline_ticks,
        } => {
            let Some(svc) = service.as_mut() else {
                return (vec![no_graph()], false);
            };
            let mut replies = Vec::new();
            for root in roots {
                match svc.submit_with_deadline(root, deadline_ticks) {
                    Ok(id) => {
                        replies.push(proto::accepted_reply(id.0, root, svc.queue_depth()));
                    }
                    Err(reason) => replies.push(proto::rejection_reply(root, &reason)),
                }
            }
            for r in svc.drain() {
                replies.push(proto::result_reply(&r));
            }
            (replies, false)
        }
        Request::Update { edges } => {
            let Some(svc) = service.as_mut() else {
                return (vec![no_graph()], false);
            };
            let n = svc.session().num_vertices();
            if let Some(&(u, v)) = edges.iter().find(|&&(u, v)| u >= n || v >= n) {
                let detail = format!("edge ({u}, {v}) outside vertex range [0, {n})");
                return (
                    vec![proto::update_rejected_reply("invalid_vertex", &detail)],
                    false,
                );
            }
            let batch: Vec<sunbfs::common::Edge> = edges
                .iter()
                .map(|&(u, v)| sunbfs::common::Edge::new(u, v))
                .collect();
            let reply = match svc.apply_updates(&batch) {
                Ok(epoch) => {
                    proto::committed_reply(epoch, batch.len(), svc.session().compactions())
                }
                Err(e) => proto::update_rejected_reply("commit_failed", &e.to_string()),
            };
            (vec![reply], false)
        }
        Request::Health => {
            let reply = match service {
                Some(svc) => proto::health_reply(&svc.health_snapshot()),
                None => no_graph(),
            };
            (vec![reply], false)
        }
        Request::Stats => {
            let reply = match service {
                Some(svc) => proto::stats_reply(&svc.report()),
                None => no_graph(),
            };
            (vec![reply], false)
        }
        Request::Drain => {
            let Some(svc) = service.as_mut() else {
                return (vec![no_graph()], false);
            };
            let mut replies: Vec<JsonValue> = svc.drain().iter().map(proto::result_reply).collect();
            replies.push(proto::drained_reply(svc.queue_depth()));
            (replies, false)
        }
        Request::Shutdown => {
            // Same contract as the TCP drain: acknowledge, flush every
            // pending query, then the final shutdown line — and exit.
            let mut replies = Vec::new();
            let mut drained = 0u64;
            if let Some(svc) = service.as_mut() {
                replies.push(proto::shutting_down_reply(svc.queue_depth()));
                for r in svc.drain() {
                    replies.push(proto::result_reply(&r));
                    drained += 1;
                }
            } else {
                replies.push(proto::shutting_down_reply(0));
            }
            replies.push(proto::shutdown_reply(drained));
            (replies, true)
        }
    }
}

// ---------------------------------------------------------------------------
// TCP mode
// ---------------------------------------------------------------------------

struct Cli {
    addr: String,
    load: LoadRequest,
    net: NetConfig,
    /// Seeded live-fault schedule (`--chaos-every` > 0 turns it on).
    chaos: Option<ChaosConfig>,
}

impl Cli {
    /// Strict flag parsing: unknown flags are an error (exit 2), and
    /// the graph knobs reuse the protocol's own `load` validation by
    /// synthesizing a `{"cmd":"load",...}` line from the flags.
    fn parse(args: &[String]) -> Result<Cli, String> {
        let mut addr: Option<String> = None;
        let mut load = JsonValue::object().field("cmd", "load");
        let mut baseline = false;
        let mut net = NetConfig::default();
        let mut chaos = ChaosConfig::default();
        let mut chaos_on = false;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .map(String::from)
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            let knob = |name: &str, raw: String| -> Result<u64, String> {
                raw.parse::<u64>()
                    .map_err(|_| format!("flag {name} needs an unsigned integer, got {raw:?}"))
            };
            match flag.as_str() {
                "--tcp" => addr = Some(value("--tcp")?),
                "--baseline" => baseline = true,
                "--path" => load = load.field("path", value("--path")?),
                "--scale" | "--ranks" | "--edge-factor" | "--e-threshold" | "--h-threshold"
                | "--seed" | "--queue-capacity" | "--batch-max" | "--flush-deadline" => {
                    let key = flag.trim_start_matches("--").replace('-', "_");
                    load = load.field(&key, knob(flag, value(flag)?)?);
                }
                "--max-conns" => net.max_connections = knob(flag, value(flag)?)? as usize,
                "--inflight-cap" => net.inflight_cap = knob(flag, value(flag)?)? as usize,
                "--read-timeout-ms" => {
                    net.read_timeout = Duration::from_millis(knob(flag, value(flag)?)?);
                }
                "--write-timeout-ms" => {
                    net.write_timeout = Duration::from_millis(knob(flag, value(flag)?)?);
                }
                "--tick-ms" => net.tick_interval = Duration::from_millis(knob(flag, value(flag)?)?),
                "--shutdown-grace-ms" => {
                    net.shutdown_grace = Duration::from_millis(knob(flag, value(flag)?)?);
                }
                "--chaos-every" => {
                    chaos.every_queries = knob(flag, value(flag)?)?;
                    chaos_on = chaos.every_queries > 0;
                }
                "--chaos-seed" => chaos.seed = knob(flag, value(flag)?)?,
                "--chaos-max-events" => chaos.max_events = knob(flag, value(flag)?)?,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if baseline {
            load = load.field("baseline", true);
        }
        let addr = addr.ok_or("TCP mode needs --tcp ADDR")?;
        let line = load.build().render();
        match proto::parse_request(&line) {
            Ok(Request::Load(l)) => Ok(Cli {
                addr,
                load: *l,
                net,
                chaos: chaos_on.then_some(chaos),
            }),
            Ok(_) => unreachable!("synthesized line is a load command"),
            Err(e) => Err(e.to_string()),
        }
    }
}

fn run_tcp(cli: Cli) {
    let session = match build_session(&cli.load, cli.chaos.is_some()) {
        Ok(s) => s,
        Err(detail) => {
            eprintln!("bfs_server: {detail}");
            std::process::exit(1);
        }
    };
    let mut service = BfsService::new(session, cli.load.serve);
    if let Some(chaos) = cli.chaos {
        service = service.with_chaos(chaos);
    }
    let server = match sunbfs::serve::serve(service, &cli.addr, cli.net) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bfs_server: bind {} failed: {e}", cli.addr);
            std::process::exit(1);
        }
    };
    let listening = JsonValue::object()
        .field("event", "listening")
        .field("addr", server.local_addr().to_string())
        .field("scale", u64::from(cli.load.session.scale))
        .field("ranks", cli.load.session.mesh.num_ranks() as u64)
        .field("queue_capacity", cli.load.serve.queue_capacity as u64)
        .field("batch_max", cli.load.serve.batch_max as u64)
        .field("max_connections", cli.net.max_connections as u64)
        .build();
    println!("{}", listening.render());
    // Blocks until a client sends {"cmd":"shutdown"} (or the process is
    // killed). The final line carries the transport summary and the
    // serve report for post-mortems — even when a server thread
    // panicked, in which case it names the panic and the process
    // exits 1.
    let outcome = server.join();
    use sunbfs::common::ToJson;
    let panicked = outcome.panicked();
    let join_error = outcome
        .service_join_error
        .as_deref()
        .or(outcome.accept_join_error.as_deref())
        .map(String::from);
    let farewell = JsonValue::object()
        .field("event", "shutdown")
        .field("net", outcome.summary.to_json())
        .field(
            "serve",
            match &outcome.service {
                Some(svc) => svc.report().to_json(),
                None => JsonValue::Null,
            },
        )
        .field(
            "join_error",
            match join_error {
                Some(e) => JsonValue::from(e),
                None => JsonValue::Null,
            },
        )
        .build();
    println!("{}", farewell.render());
    if panicked {
        std::process::exit(1);
    }
}
