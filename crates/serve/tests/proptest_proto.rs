//! Fuzzing of the NDJSON request parser: [`parse_request`] is the
//! first thing untrusted bytes touch, so it must *never* panic —
//! every input line yields either a valid [`Request`] or a typed
//! [`ProtoError`], including embedded NULs, truncated UTF-8 rendered
//! lossily, pathological nesting, and oversized lines.

use proptest::prelude::*;
use sunbfs_serve::proto::{parse_request, ProtoError, Request, MAX_REQUEST_BYTES};

/// The closed-set invariant: parsing any line terminates without a
/// panic, and a refusal is one of the typed classes whose label and
/// Display rendering also never panic.
fn assert_total(line: &str) {
    match parse_request(line) {
        Ok(req) => {
            // A parsed request is structurally sound; formatting it
            // must not blow up either.
            let _ = format!("{req:?}");
        }
        Err(e) => {
            let label = e.label();
            assert!(
                matches!(
                    label,
                    "oversized" | "bad_json" | "missing_cmd" | "unknown_cmd" | "bad_request"
                ),
                "unexpected error label {label}"
            );
            let _ = e.to_string();
            let _ = e.is_fatal();
        }
    }
}

const CMDS: [&str; 9] = [
    "load", "query", "batch", "stats", "drain", "health", "shutdown", "nope", "",
];
const KNOBS: [&str; 6] = ["deadline_ticks", "scale", "ranks", "roots", "root", "x"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes, lossily decoded the way the socket reader does
    /// it: replacement characters, embedded NULs, control bytes — the
    /// parser refuses or accepts, it never panics.
    #[test]
    fn arbitrary_byte_lines_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let line = String::from_utf8_lossy(&bytes);
        assert_total(&line);
    }

    /// Arbitrary unicode scalar streams (covers multi-byte sequences
    /// the byte fuzzer mostly mangles into replacement chars).
    #[test]
    fn arbitrary_unicode_lines_never_panic(
        points in prop::collection::vec(any::<u32>(), 0..128),
    ) {
        let line: String = points
            .iter()
            .filter_map(|&p| char::from_u32(p % 0x11_0000))
            .collect();
        assert_total(&line);
    }

    /// Structured mutations around the real grammar: a valid command
    /// word next to junk knobs of the wrong type, then every prefix of
    /// the document (truncated mid-line) — all must be total.
    #[test]
    fn mutated_command_lines_never_panic(
        cmd_i in 0usize..CMDS.len(),
        root in any::<u64>(),
        knob_i in 0usize..KNOBS.len(),
        junk in prop::collection::vec(0u8..0x80, 0..40),
        cut in 0usize..200,
    ) {
        let junk: String = junk.iter().map(|&b| b as char).collect();
        let full = format!(
            r#"{{"cmd":"{}","root":{root},"{}":{junk:?}}}"#,
            CMDS[cmd_i], KNOBS[knob_i],
        );
        assert_total(&full);
        let cut = cut.min(full.len());
        if full.is_char_boundary(cut) {
            assert_total(&full[..cut]);
        }
    }

    /// Deep nesting: the JSON parser's recursion is depth-capped, so
    /// even thousands of unclosed brackets must come back as a typed
    /// bad_json refusal, never a stack overflow.
    #[test]
    fn deeply_nested_documents_are_refused_not_overflowed(
        depth in 1usize..4000,
        close in any::<bool>(),
    ) {
        let mut line = String::from(r#"{"cmd":"#);
        line.extend(std::iter::repeat_n('[', depth));
        if close {
            line.push('1');
            line.extend(std::iter::repeat_n(']', depth));
        }
        line.push('}');
        assert_total(&line);
    }
}

/// Deterministic edge cases the fuzzers may not hit every run.
#[test]
fn hostile_edge_cases_are_total() {
    for line in [
        "",
        "\0",
        "{\"cmd\":\"query\",\"root\":1}\0",
        "{\"cmd\":\"query\",\"root\":18446744073709551616}", // u64::MAX + 1
        "{\"cmd\":\"query\",\"root\":1,\"deadline_ticks\":4294967296}", // u32::MAX + 1
        "{\"cmd\":\"query\",\"root\":-1}",
        "{\"cmd\":\"query\",\"root\":1e400}",
        "{\"cmd\": \"qu\u{fffd}ery\"}",
        "{\"cmd\":\"batch\",\"roots\":{}}",
        "\u{feff}{\"cmd\":\"stats\"}", // BOM prefix
        "{",
        "}",
        "null",
        "[]",
        "true",
        "\"cmd\"",
    ] {
        assert_total(line);
    }
    // The cap boundary itself: exactly MAX_REQUEST_BYTES parses (or
    // refuses as bad_json), one past it is an oversized refusal.
    let at_cap = "x".repeat(MAX_REQUEST_BYTES);
    assert_total(&at_cap);
    let over = "x".repeat(MAX_REQUEST_BYTES + 1);
    assert!(matches!(
        parse_request(&over),
        Err(ProtoError::Oversized { .. })
    ));
    // A well-formed health request stays parseable amid the hostility.
    assert!(matches!(
        parse_request(r#"{"cmd":"health"}"#),
        Ok(Request::Health)
    ));
}
