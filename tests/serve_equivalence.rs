//! Batch-vs-sequential equivalence sweep: across mesh shapes and
//! threshold regimes, every root served by the bit-parallel
//! multi-source batch must report exactly the depths the sequential
//! single-source engine (and the host-side reference BFS) computes,
//! and its parent tree must pass Graph 500 validation.

use sunbfs::common::MachineConfig;
use sunbfs::core::{validate, EngineConfig};
use sunbfs::driver::pick_roots;
use sunbfs::net::{FaultPlan, MeshShape};
use sunbfs::part::Thresholds;
use sunbfs::serve::{BfsService, GraphSession, QueryStatus, ServeConfig, SessionConfig};

fn sweep_case(scale: u32, ranks: usize, thresholds: Thresholds, num_roots: usize) {
    let label = format!("scale {scale}, {ranks} ranks, {thresholds:?}");
    let cfg = SessionConfig {
        scale,
        edge_factor: 16,
        mesh: MeshShape::near_square(ranks),
        thresholds,
        engine: EngineConfig::default(),
        machine: MachineConfig::new_sunway(),
        seed: 42,
        max_load_attempts: 1,
    };
    let params = cfg.rmat();
    let n = params.num_vertices();
    let roots = pick_roots(&params, num_roots).expect("connected roots");
    let edges = sunbfs::rmat::generate_edges(&params);

    let session = GraphSession::load(cfg, FaultPlan::none()).expect("clean load");
    let mut svc = BfsService::new(session, ServeConfig::default());
    for &root in &roots {
        svc.submit(root).expect("admit");
    }
    let mut results = svc.drain();
    results.sort_by_key(|r| r.id);
    assert_eq!(results.len(), roots.len(), "{label}: every root completes");

    for r in &results {
        assert!(
            matches!(r.status, QueryStatus::Served),
            "{label}: root {} not served",
            r.root
        );
        assert!(!r.via_fallback, "{label}: fault-free run must stay batched");
        let parents = r.parents.as_ref().expect("served result carries a tree");

        // Graph 500 validation of the batch-produced tree.
        validate::validate_parents(n, &edges, r.root, parents)
            .unwrap_or_else(|e| panic!("{label}: root {} tree invalid: {e:?}", r.root));

        // Depth equivalence against the host-side reference BFS...
        let (_, ref_levels) = validate::reference_bfs(n, &edges, r.root);
        let batch_levels =
            validate::levels_from_parents(r.root, parents).expect("validated tree has levels");
        assert_eq!(
            batch_levels, ref_levels,
            "{label}: root {} batch depths differ from reference",
            r.root
        );

        // ...and against the sequential single-source engine on the
        // same resident partition.
        let seq_parents: Vec<u64> = svc
            .session()
            .run_single(r.root)
            .into_iter()
            .map(|rank| rank.expect("no rank failure").expect("terminates"))
            .flat_map(|o| o.parents)
            .collect();
        let seq_levels =
            validate::levels_from_parents(r.root, &seq_parents).expect("sequential tree is valid");
        assert_eq!(
            batch_levels, seq_levels,
            "{label}: root {} batch depths differ from sequential engine",
            r.root
        );

        // The histogram the service reports is the depth census.
        let mut want_hist: Vec<u64> = Vec::new();
        for &lvl in &ref_levels {
            if lvl == u64::MAX {
                continue;
            }
            let d = lvl as usize;
            if want_hist.len() <= d {
                want_hist.resize(d + 1, 0);
            }
            want_hist[d] += 1;
        }
        assert_eq!(
            r.depth_histogram, want_hist,
            "{label}: root {} histogram mismatch",
            r.root
        );
        assert_eq!(
            r.visited,
            want_hist.iter().sum::<u64>(),
            "{label}: root {} visited mismatch",
            r.root
        );
    }
}

#[test]
fn batch_matches_sequential_on_the_standard_mesh() {
    sweep_case(9, 4, Thresholds::new(256, 64), 6);
}

#[test]
fn batch_matches_sequential_on_a_wide_mesh() {
    sweep_case(9, 9, Thresholds::new(128, 32), 5);
}

#[test]
fn batch_matches_sequential_with_no_hubs() {
    sweep_case(8, 4, Thresholds::none(), 4);
}

#[test]
fn batch_matches_sequential_with_all_hubs() {
    sweep_case(8, 6, Thresholds::all_hubs(1 << 20), 4);
}
