//! End-to-end correctness of the vertex-program framework: every
//! shipped program must match its sequential oracle on random skewed
//! multigraphs, across mesh shapes and threshold settings.

use std::collections::VecDeque;

use sunbfs_common::{Edge, MachineConfig, SplitMix64, INVALID_VERTEX};
use sunbfs_framework::{
    edge_weight, run_program, Bfs, ConnectedComponents, PageRank, ShortestPaths,
};
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, Thresholds};

fn skewed_graph(n: u64, m: usize, seed: u64) -> Vec<Edge> {
    let mut rng = SplitMix64::new(seed);
    (0..m)
        .map(|_| {
            let u = if rng.next_below(3) == 0 {
                rng.next_below(4)
            } else {
                rng.next_below(n)
            };
            Edge::new(u, rng.next_below(n))
        })
        .collect()
}

/// Run a program over a cluster and stitch the owned values in rank order.
fn run_over<P>(
    rows: usize,
    cols: usize,
    n: u64,
    edges: &[Edge],
    th: Thresholds,
    program: P,
) -> Vec<P::Value>
where
    P: sunbfs_framework::VertexProgram + Copy + Send,
{
    let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
    let p = rows * cols;
    let out = cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % p == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        let part = build_1p5d(ctx, n, &chunk, th);
        run_program(ctx, &part, &program)
    });
    out.into_iter().flat_map(|o| o.values).collect()
}

fn adjacency(n: u64, edges: &[Edge]) -> Vec<Vec<u64>> {
    let mut adj = vec![Vec::new(); n as usize];
    for e in edges {
        if !e.is_self_loop() {
            adj[e.u as usize].push(e.v);
            adj[e.v as usize].push(e.u);
        }
    }
    adj
}

#[test]
fn framework_bfs_matches_reference_levels() {
    let n = 200;
    let edges = skewed_graph(n, 1500, 1);
    let root = edges.iter().find(|e| !e.is_self_loop()).unwrap().u;
    let values = run_over(2, 2, n, &edges, Thresholds::new(100, 20), Bfs { root });
    let parents: Vec<u64> = values.iter().map(|v| v.parent).collect();
    sunbfs_core::validate_parents(n, &edges, root, &parents).expect("invalid BFS tree");
    let levels = sunbfs_core::validate::levels_from_parents(root, &parents).unwrap();
    let (_, expect) = sunbfs_core::reference_bfs(n, &edges, root);
    assert_eq!(levels, expect);
}

#[test]
fn framework_bfs_agrees_with_dedicated_engine_reachability() {
    let n = 150;
    let edges = skewed_graph(n, 1200, 2);
    let root = edges[0].u;
    let th = Thresholds::new(80, 16);
    let fw = run_over(2, 2, n, &edges, th, Bfs { root });
    let fw_reached = fw.iter().filter(|v| v.parent != INVALID_VERTEX).count();
    let (ref_parents, _) = sunbfs_core::reference_bfs(n, &edges, root);
    let expect = ref_parents.iter().filter(|&&p| p != INVALID_VERTEX).count();
    assert_eq!(fw_reached, expect);
}

fn dijkstra(n: u64, edges: &[Edge], root: u64, seed: u64) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let adj = adjacency(n, edges);
    let mut dist = vec![u64::MAX; n as usize];
    dist[root as usize] = 0;
    let mut heap = BinaryHeap::from([Reverse((0u64, root))]);
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &v in &adj[u as usize] {
            let nd = d + edge_weight(u, v, seed);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

#[test]
fn sssp_matches_dijkstra_exactly() {
    let n = 160;
    let edges = skewed_graph(n, 1200, 3);
    let root = edges[0].u;
    let seed = 99;
    for th in [
        Thresholds::new(80, 16),
        Thresholds::none(),
        Thresholds::all_hubs(1 << 20),
    ] {
        let values = run_over(
            2,
            2,
            n,
            &edges,
            th,
            ShortestPaths {
                root,
                weight_seed: seed,
            },
        );
        let expect = dijkstra(n, &edges, root, seed);
        for v in 0..n as usize {
            assert_eq!(
                values[v].dist, expect[v],
                "distance mismatch at {v} under {th:?}"
            );
        }
        // Parents must be real relaxations: dist[v] = dist[p] + w(p, v).
        for v in 0..n as usize {
            let p = values[v].parent;
            if values[v].dist != u64::MAX && p != v as u64 && p != INVALID_VERTEX {
                assert_eq!(
                    values[v].dist,
                    values[p as usize].dist + edge_weight(p, v as u64, seed),
                    "parent edge of {v} is not tight"
                );
            }
        }
    }
}

#[test]
fn connected_components_match_sequential_union() {
    let n = 180;
    // Sparse graph → several components.
    let edges = skewed_graph(n, 120, 4);
    let values = run_over(2, 3, n, &edges, Thresholds::new(40, 8), ConnectedComponents);
    // Sequential BFS labeling.
    let adj = adjacency(n, &edges);
    let mut expect = vec![u64::MAX; n as usize];
    for start in 0..n {
        if expect[start as usize] != u64::MAX {
            continue;
        }
        let mut q = VecDeque::from([start]);
        expect[start as usize] = start;
        while let Some(u) = q.pop_front() {
            for &v in &adj[u as usize] {
                if expect[v as usize] == u64::MAX {
                    expect[v as usize] = start;
                    q.push_back(v);
                }
            }
        }
    }
    // Min-label propagation converges to the smallest id per component,
    // which is exactly the first-seen label of the sequential scan.
    assert_eq!(values, expect);
}

#[test]
fn pagerank_matches_sequential_power_iteration() {
    let n = 120;
    // PageRank divides by degree, so the oracle must see exactly the
    // graph the partition stores: simple (the CSR builders deduplicate
    // multi-edges) and loop-free. Canonicalize the generator's output.
    let mut canon: Vec<Edge> = skewed_graph(n, 900, 5)
        .into_iter()
        .filter(|e| !e.is_self_loop())
        .map(Edge::canonical)
        .collect();
    canon.sort_unstable();
    canon.dedup();
    let edges = canon;
    let iters = 15;
    let values = run_over(
        2,
        2,
        n,
        &edges,
        Thresholds::new(60, 12),
        PageRank::new(n, iters),
    );

    // Sequential power iteration with the same conventions.
    let adj = adjacency(n, &edges);
    let deg: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut rank = vec![1.0 / n as f64; n as usize];
    for _ in 0..iters {
        let mut next = vec![0.0f64; n as usize];
        for u in 0..n as usize {
            if deg[u] == 0 {
                continue;
            }
            let share = rank[u] * 0.85 / deg[u] as f64;
            for &v in &adj[u] {
                next[v as usize] += share;
            }
        }
        for (u, r) in next.iter_mut().enumerate() {
            if *r > 0.0 || deg[u] > 0 {
                *r += 0.15 / n as f64;
            } else {
                // Vertices with no incoming mass keep their old rank
                // (framework applies only on message receipt).
                *r = rank[u];
            }
        }
        rank = next;
    }
    for v in 0..n as usize {
        assert!(
            (values[v].rank - rank[v]).abs() < 1e-9,
            "rank mismatch at {v}: {} vs {}",
            values[v].rank,
            rank[v]
        );
    }
    // Sanity: the biggest hub outranks the median vertex.
    let mut sorted: Vec<f64> = values.iter().map(|v| v.rank).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let hub_rank = values.iter().map(|v| v.rank).fold(0.0f64, f64::max);
    assert!(
        hub_rank > sorted[n as usize / 2] * 3.0,
        "degree skew must show in ranks"
    );
}

#[test]
fn framework_runs_on_every_mesh_shape() {
    let n = 96;
    let edges = skewed_graph(n, 600, 6);
    let root = edges[0].u;
    let (_, expect) = sunbfs_core::reference_bfs(n, &edges, root);
    for (rows, cols) in [(1, 1), (1, 4), (4, 1), (2, 2)] {
        let values = run_over(rows, cols, n, &edges, Thresholds::new(50, 10), Bfs { root });
        let parents: Vec<u64> = values.iter().map(|v| v.parent).collect();
        let levels = sunbfs_core::validate::levels_from_parents(root, &parents).unwrap();
        assert_eq!(levels, expect, "mesh {rows}x{cols}");
    }
}

#[test]
fn stats_are_populated() {
    let n = 64;
    let edges = skewed_graph(n, 400, 7);
    let cluster = Cluster::new(MeshShape::new(2, 2), MachineConfig::new_sunway());
    let out = cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        let part = build_1p5d(ctx, n, &chunk, Thresholds::new(40, 8));
        run_program(ctx, &part, &ConnectedComponents)
    });
    for o in &out {
        assert!(o.stats.sim_seconds > 0.0);
        assert!(!o.stats.rounds.is_empty());
        assert!(o.stats.rounds[0].active > 0);
    }
}
