//! The session-persistent graph: generate + partition once, query many.
//!
//! The Graph 500 driver rebuilds its partition for every benchmark run
//! and exits; a service cannot afford that. [`GraphSession::load`] pays
//! the R-MAT generation and 1.5D partition build exactly once, keeps
//! each rank's [`RankPartition`] resident on the driver side, and hands
//! out traversals against it for as long as the session lives. The
//! underlying [`Cluster`] is reusable across SPMD runs (its collective
//! counters reset per run), so one session serves an unbounded stream
//! of queries — and because planned fault events fire at most once per
//! cluster lifetime, a query that loses a rank can simply be retried on
//! the healed cluster without touching the resident partition.
//!
//! The build is no longer the only way in: [`GraphSession::save`]
//! serializes the resident partition into the paged, checksummed
//! `sunbfs-store` file format, [`GraphSession::open`] loads one back
//! (refusing damage or a header that disagrees with the requested
//! [`SessionConfig`] with a typed error), and
//! [`GraphSession::open_or_build`] is the restart-economics entry
//! point: open the file when it matches, otherwise build once and
//! save for next time. What happened is recorded in
//! [`StoreActivity`] so reports can show cold-build versus warm-open
//! wall seconds.
//!
//! The graph is no longer frozen either: [`GraphSession::apply_updates`]
//! commits a batched edge-insert through the `sunbfs-mutate` overlay
//! machinery and bumps the session **epoch** (a monotone count of
//! committed batches). Updates are only ever applied by the single
//! service thread between query batches, so every query runs against a
//! consistent snapshot and is stamped with the epoch it saw. Cached
//! base-graph results are patched by incremental repair
//! ([`GraphSession::repair_result`]); a delta that grows past
//! [`DELTA_COMPACT_THRESHOLD`] entries — or any degree-class promotion
//! — triggers [`GraphSession::compact`], which rebuilds the base CSRs
//! from the union edge list, byte-identical to a fresh build over it
//! (`docs/UPDATES.md`).

use std::path::Path;
use std::time::Instant;

use sunbfs_common::{Edge, JsonValue, MachineConfig, ToJson};
use sunbfs_core::{
    run_bfs, run_bfs_batch, run_bfs_recoverable, BatchOutput, BfsOutput, CheckpointStore,
    EngineConfig, EngineError,
};
use sunbfs_mutate::{
    canonical_edge_set, repair_in_place, route_update_batch, DeltaPartition, RepairStats,
    UnionAdjacency,
};
use sunbfs_net::{Cluster, FaultPlan, MeshShape, RankFailure};
use sunbfs_part::{build_1p5d, ComponentStats, RankPartition, Thresholds, VertexDistribution};
use sunbfs_rmat::RmatParams;
use sunbfs_store::{StoreError, StoreHeader, StoreInfo};

/// Delta entries that trigger a compaction on the next committed batch.
/// Sized so the repair pass stays cheap relative to a recompute while
/// compactions stay rare under soak-level update rates.
pub const DELTA_COMPACT_THRESHOLD: u64 = 4096;

/// Everything a session needs to materialize its graph.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Graph 500 SCALE (`2^scale` vertices).
    pub scale: u32,
    /// Edges per vertex (spec: 16).
    pub edge_factor: u32,
    /// Mesh of simulated ranks.
    pub mesh: MeshShape,
    /// E/H degree thresholds.
    pub thresholds: Thresholds,
    /// Engine technique toggles (shared by batch and fallback paths).
    pub engine: EngineConfig,
    /// Machine constants.
    pub machine: MachineConfig,
    /// Generator seed.
    pub seed: u64,
    /// SPMD attempts [`GraphSession::load`] may spend before giving up
    /// (a planned fault can fire during the build; it is consumed by
    /// the failed attempt, so a bounded retry normally heals the load).
    pub max_load_attempts: u32,
}

impl SessionConfig {
    /// A laptop-scale session.
    pub fn small(scale: u32, ranks: usize) -> Self {
        SessionConfig {
            scale,
            edge_factor: 16,
            mesh: MeshShape::near_square(ranks),
            thresholds: Thresholds::new(256, 64),
            engine: EngineConfig::default(),
            machine: MachineConfig::new_sunway(),
            seed: 42,
            max_load_attempts: 3,
        }
    }

    /// The generator parameters this session materializes.
    pub fn rmat(&self) -> RmatParams {
        let mut p = RmatParams::graph500(self.scale, self.seed);
        p.edge_factor = self.edge_factor;
        p
    }

    /// The store-file header this configuration demands — what
    /// [`GraphSession::open`] checks a file against before trusting
    /// its graph. The epoch is graph *state*, not configuration: it is
    /// zero here, and [`GraphSession::save`] stamps the session's live
    /// epoch over it.
    pub fn store_header(&self) -> StoreHeader {
        StoreHeader {
            scale: u64::from(self.scale),
            edge_factor: u64::from(self.edge_factor),
            mesh_rows: self.mesh.rows as u64,
            mesh_cols: self.mesh.cols as u64,
            e_threshold: u64::from(self.thresholds.e),
            h_threshold: u64::from(self.thresholds.h),
            seed: self.seed,
            num_ranks: self.mesh.num_ranks() as u64,
            epoch: 0,
        }
    }
}

/// Loading the resident graph failed on every allowed attempt.
#[derive(Debug)]
pub struct LoadError {
    /// SPMD attempts spent.
    pub attempts: u32,
    /// Rank failures observed on the final attempt.
    pub failures: Vec<RankFailure>,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph load failed after {} attempts ({} rank failures on the last)",
            self.attempts,
            self.failures.len()
        )
    }
}

impl std::error::Error for LoadError {}

/// Opening or building a session failed.
#[derive(Debug)]
pub enum SessionError {
    /// The fresh build lost ranks on every allowed attempt.
    Load(LoadError),
    /// The store file was damaged, mismatched, or unwritable.
    Store(StoreError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Load(e) => e.fmt(f),
            SessionError::Store(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<LoadError> for SessionError {
    fn from(e: LoadError) -> Self {
        SessionError::Load(e)
    }
}

impl From<StoreError> for SessionError {
    fn from(e: StoreError) -> Self {
        SessionError::Store(e)
    }
}

/// What the persistent partition store did for this session — the
/// record behind the metrics JSON `store` section.
#[derive(Clone, Debug)]
pub struct StoreActivity {
    /// The store file involved.
    pub path: String,
    /// True when the resident partition was decoded from the file.
    pub opened: bool,
    /// True when the resident partition was written to the file.
    pub saved: bool,
    /// Store file size in bytes.
    pub file_bytes: u64,
    /// Store file size in pages.
    pub pages: u64,
    /// Wall seconds the fresh generate + partition build took (present
    /// only when this session built, i.e. the cold path).
    pub cold_build_wall_seconds: Option<f64>,
    /// Wall seconds the file open + decode took (present only when
    /// this session opened, i.e. the warm path).
    pub warm_open_wall_seconds: Option<f64>,
}

impl ToJson for StoreActivity {
    fn to_json(&self) -> JsonValue {
        let opt = |v: Option<f64>| match v {
            Some(s) => JsonValue::from(s),
            None => JsonValue::Null,
        };
        JsonValue::object()
            .field("path", self.path.clone())
            .field("opened", self.opened)
            .field("saved", self.saved)
            .field("file_bytes", self.file_bytes)
            .field("pages", self.pages)
            .field("cold_build_wall_seconds", opt(self.cold_build_wall_seconds))
            .field("warm_open_wall_seconds", opt(self.warm_open_wall_seconds))
            .build()
    }
}

/// A resident graph: one cluster plus every rank's partition, built
/// once and borrowed by each query run.
pub struct GraphSession {
    cfg: SessionConfig,
    cluster: Cluster,
    parts: Vec<RankPartition>,
    /// Per-rank component sizes of the resident partition.
    pub partition_stats: Vec<ComponentStats>,
    /// Simulated seconds the (successful) build took, max over ranks.
    /// Zero for a session opened from a store file.
    pub build_sim_seconds: f64,
    /// Simulated seconds spent across *all* build attempts, failed
    /// ones included — `>= build_sim_seconds` whenever a transient
    /// fault forced a retry, so degraded loads report their real cost.
    pub load_sim_seconds: f64,
    /// SPMD attempts the load spent (1 = clean first build, 0 = the
    /// partition was opened from a store file, no build at all).
    pub load_attempts: u32,
    /// What the persistent store did for this session, when a store
    /// path was involved at all.
    pub store: Option<StoreActivity>,
    /// Wall seconds the fresh build took (None when opened from file).
    build_wall_seconds: Option<f64>,
    /// Per-rank delta overlays holding committed-but-uncompacted edges.
    deltas: Vec<DeltaPartition>,
    /// Every committed insert since the last compaction, canonical and
    /// loop-free, in commit order — the seed set for incremental repair
    /// and the delta half of the compaction union.
    delta_log: Vec<Edge>,
    /// Monotone count of committed update batches.
    epoch: u64,
    /// Compactions performed over the session's lifetime.
    compactions: u64,
}

fn fresh_deltas(num_ranks: usize) -> Vec<DeltaPartition> {
    (0..num_ranks).map(DeltaPartition::new).collect()
}

impl GraphSession {
    /// Generate the R-MAT graph and build the 1.5D partition, retrying
    /// up to `cfg.max_load_attempts` times when a (transient) fault
    /// takes a rank down mid-build.
    ///
    /// # Errors
    /// [`LoadError`] when every attempt lost at least one rank.
    pub fn load(cfg: SessionConfig, plan: FaultPlan) -> Result<GraphSession, LoadError> {
        let wall0 = Instant::now();
        let params = cfg.rmat();
        let n = params.num_vertices();
        let p = cfg.mesh.num_ranks() as u64;
        let cluster = Cluster::with_faults(cfg.mesh, cfg.machine, plan);
        let budget = cfg.max_load_attempts.max(1);
        let mut attempts = 0;
        let mut load_sim_seconds = 0.0;
        loop {
            attempts += 1;
            let faults_before = cluster.fault_log().len();
            let results = cluster.run_fallible(|ctx| {
                let t0 = ctx.now();
                let chunk = sunbfs_rmat::generate_chunk(&params, ctx.rank() as u64, p);
                let part = build_1p5d(ctx, n, &chunk, cfg.thresholds);
                ((ctx.now() - t0).as_secs(), part)
            });
            let mut oks = Vec::with_capacity(results.len());
            let mut failures = Vec::new();
            for r in results {
                match r {
                    Ok(v) => oks.push(v),
                    Err(f) => failures.push(f),
                }
            }
            // Every attempt's simulated cost counts — a failed attempt
            // still burned build time before unwinding, and hiding it
            // would make a `load_attempts = 3` session look as cheap
            // as a clean one. A failed attempt returns no rank
            // timings (every rank unwinds at the poisoned collective),
            // so its cost is taken from the fault log: the simulated
            // clock at the moment the attempt's fault(s) fired.
            let attempt_sim_seconds = if failures.is_empty() {
                oks.iter().map(|(s, _)| *s).fold(0.0, f64::max)
            } else {
                cluster.fault_log()[faults_before..]
                    .iter()
                    .map(|f| f.sim_seconds)
                    .fold(0.0, f64::max)
            };
            load_sim_seconds += attempt_sim_seconds;
            if failures.is_empty() {
                let parts: Vec<RankPartition> = oks.into_iter().map(|(_, p)| p).collect();
                let partition_stats = parts.iter().map(|p| p.stats).collect();
                return Ok(GraphSession {
                    cfg,
                    cluster,
                    parts,
                    partition_stats,
                    build_sim_seconds: attempt_sim_seconds,
                    load_sim_seconds,
                    load_attempts: attempts,
                    store: None,
                    build_wall_seconds: Some(wall0.elapsed().as_secs_f64()),
                    deltas: fresh_deltas(p as usize),
                    delta_log: Vec::new(),
                    epoch: 0,
                    compactions: 0,
                });
            }
            if attempts >= budget {
                return Err(LoadError { attempts, failures });
            }
        }
    }

    /// Open a previously saved partition store instead of rebuilding:
    /// verify every page and stream seal, check the header against
    /// `cfg`, and decode each rank's partition by streamed sequential
    /// reads.
    ///
    /// # Errors
    /// A typed [`StoreError`] (wrapped in [`SessionError::Store`]) on
    /// any damage or on a header that describes a different graph than
    /// `cfg` — never a wrong graph. A store saved at a non-zero epoch
    /// (a mutated graph) is refused too: callers who expect mutations
    /// use [`Self::open_expecting_epoch`].
    pub fn open(
        path: &Path,
        cfg: SessionConfig,
        plan: FaultPlan,
    ) -> Result<GraphSession, SessionError> {
        Self::open_expecting_epoch(path, cfg, plan, 0)
    }

    /// [`Self::open`] for a store known to hold a mutated graph: the
    /// file's epoch must equal `expected_epoch` exactly. The refusal on
    /// mismatch is typed (`HeaderMismatch { field: "epoch", .. }`) —
    /// never a silently stale graph.
    ///
    /// # Errors
    /// As [`Self::open`], plus the epoch refusal.
    pub fn open_expecting_epoch(
        path: &Path,
        cfg: SessionConfig,
        plan: FaultPlan,
        expected_epoch: u64,
    ) -> Result<GraphSession, SessionError> {
        let wall0 = Instant::now();
        let (header, parts, info) = sunbfs_store::open_file(path)?;
        header.check_matches(&cfg.store_header())?;
        header.check_epoch(expected_epoch)?;
        Ok(Self::from_opened(
            path,
            cfg,
            plan,
            parts,
            info,
            header.epoch,
            wall0.elapsed().as_secs_f64(),
        ))
    }

    /// Assemble a session around partitions decoded from `path`. The
    /// decoded CSRs are always a compacted graph (saving compacts
    /// first), so the session starts with an empty delta at `epoch`.
    fn from_opened(
        path: &Path,
        cfg: SessionConfig,
        plan: FaultPlan,
        parts: Vec<RankPartition>,
        info: StoreInfo,
        epoch: u64,
        warm_open_wall_seconds: f64,
    ) -> GraphSession {
        let cluster = Cluster::with_faults(cfg.mesh, cfg.machine, plan);
        let partition_stats = parts.iter().map(|p| p.stats).collect();
        let num_ranks = cfg.mesh.num_ranks();
        GraphSession {
            cfg,
            cluster,
            parts,
            partition_stats,
            build_sim_seconds: 0.0,
            load_sim_seconds: 0.0,
            load_attempts: 0,
            store: Some(StoreActivity {
                path: path.display().to_string(),
                opened: true,
                saved: false,
                file_bytes: info.file_bytes,
                pages: info.pages,
                cold_build_wall_seconds: None,
                warm_open_wall_seconds: Some(warm_open_wall_seconds),
            }),
            build_wall_seconds: None,
            deltas: fresh_deltas(num_ranks),
            delta_log: Vec::new(),
            epoch,
            compactions: 0,
        }
    }

    /// The restart-economics entry point: [`Self::open`] when `path`
    /// holds a matching store, else build fresh ([`Self::load`]) and
    /// save the result to `path` for the next restart.
    ///
    /// A missing file and a header describing a different graph both
    /// take the build-and-save path (the file is overwritten with the
    /// requested graph); *damage* — bad magic, truncation, a failed
    /// checksum — is surfaced as a typed error instead of being
    /// silently rebuilt over, because a store that rots on disk is
    /// something an operator must hear about. A matching store saved
    /// at a non-zero epoch is *adopted* (the session resumes at that
    /// epoch) — the epoch names graph state, not a different graph,
    /// and rebuilding over it would silently discard committed
    /// updates.
    ///
    /// # Errors
    /// [`SessionError::Load`] when the fresh build fails,
    /// [`SessionError::Store`] on damage or on a failed save.
    pub fn open_or_build(
        path: &Path,
        cfg: SessionConfig,
        plan: FaultPlan,
    ) -> Result<GraphSession, SessionError> {
        let wall0 = Instant::now();
        let build_and_save = |plan: FaultPlan| -> Result<GraphSession, SessionError> {
            let mut session = Self::load(cfg, plan)?;
            session.save(path)?;
            Ok(session)
        };
        match sunbfs_store::open_file(path) {
            Ok((header, parts, info)) => match header.check_matches(&cfg.store_header()) {
                Ok(()) => Ok(Self::from_opened(
                    path,
                    cfg,
                    plan,
                    parts,
                    info,
                    header.epoch,
                    wall0.elapsed().as_secs_f64(),
                )),
                Err(StoreError::HeaderMismatch { .. }) => build_and_save(plan),
                Err(e) => Err(e.into()),
            },
            Err(StoreError::Io {
                kind: std::io::ErrorKind::NotFound,
                ..
            }) => build_and_save(plan),
            Err(e) => Err(e.into()),
        }
    }

    /// Serialize the resident partition to `path` in the paged store
    /// format, recording the write in [`Self::store`]. A mutated
    /// session compacts its delta first, so the stored CSRs always
    /// describe the full union graph; the header is stamped with the
    /// session's live epoch, and reopening demands that same epoch
    /// ([`Self::open_expecting_epoch`]).
    ///
    /// # Errors
    /// [`SessionError::Store`] when the file cannot be written,
    /// [`SessionError::Load`] when the pre-save compaction loses ranks.
    pub fn save(&mut self, path: &Path) -> Result<StoreInfo, SessionError> {
        if self.has_delta() {
            self.compact()?;
        }
        let header = StoreHeader {
            epoch: self.epoch,
            ..self.cfg.store_header()
        };
        let info = sunbfs_store::save_file(path, &header, &self.parts)?;
        let activity = self.store.get_or_insert_with(|| StoreActivity {
            path: String::new(),
            opened: false,
            saved: false,
            file_bytes: 0,
            pages: 0,
            cold_build_wall_seconds: None,
            warm_open_wall_seconds: None,
        });
        activity.path = path.display().to_string();
        activity.saved = true;
        activity.file_bytes = info.file_bytes;
        activity.pages = info.pages;
        activity.cold_build_wall_seconds = self.build_wall_seconds;
        Ok(info)
    }

    /// The configuration this session was loaded with.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Total vertices in the resident graph.
    pub fn num_vertices(&self) -> u64 {
        self.cfg.rmat().num_vertices()
    }

    /// Number of ranks holding the partition.
    pub fn num_ranks(&self) -> usize {
        self.cfg.mesh.num_ranks()
    }

    /// The block distribution of the resident graph (for assembling
    /// rank-local slices into global arrays).
    pub fn distribution(&self) -> VertexDistribution {
        VertexDistribution::new(self.num_vertices(), self.num_ranks())
    }

    /// The underlying cluster (fault/retransmit logs, topology).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Every rank's resident base partition.
    pub fn partitions(&self) -> &[RankPartition] {
        &self.parts
    }

    /// Every rank's delta overlay (empty right after a compaction).
    pub fn deltas(&self) -> &[DeltaPartition] {
        &self.deltas
    }

    /// Committed-but-uncompacted inserts, canonical and in commit
    /// order — the seed set incremental repair re-expands from.
    pub fn delta_log(&self) -> &[Edge] {
        &self.delta_log
    }

    /// Monotone count of committed update batches.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Compactions performed over the session's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// True when committed updates are still resident in the overlay.
    pub fn has_delta(&self) -> bool {
        self.deltas.iter().any(|d| !d.is_empty())
    }

    /// Total adjacency entries across every rank's delta overlay.
    pub fn delta_entries(&self) -> u64 {
        self.deltas.iter().map(|d| d.entries()).sum()
    }

    /// Commit one batched edge-insert and bump the epoch.
    ///
    /// The batch is routed through the same exchange machinery as the
    /// original build (`route_update_batch` under one SPMD pass), so
    /// every rank derives an identical view of the new degrees and
    /// classes. The merge into the resident overlays happens only after
    /// *all* ranks succeeded — a lost rank leaves the session exactly
    /// as it was (no torn commit) and surfaces as a typed error.
    ///
    /// When the batch promotes a vertex across a degree-class threshold
    /// — or the overlay crosses [`DELTA_COMPACT_THRESHOLD`] — the
    /// commit finishes with an immediate [`Self::compact`]: hub ids are
    /// assigned in global degree-sorted order, so an overlay past a
    /// promotion would describe the wrong class layout.
    ///
    /// Callers serialize commits against queries (the service applies
    /// updates only between query batches on its single service
    /// thread), which is what makes every reply's stamped epoch a
    /// consistent snapshot.
    ///
    /// # Errors
    /// [`SessionError::Load`] when the routing pass or the triggered
    /// compaction loses ranks.
    pub fn apply_updates(&mut self, batch: &[Edge]) -> Result<u64, SessionError> {
        let thresholds = self.cfg.thresholds;
        let updates = {
            let parts = &self.parts;
            let deltas = &self.deltas;
            let results = self.cluster.run_fallible(move |ctx| {
                route_update_batch(
                    ctx,
                    &parts[ctx.rank()],
                    &deltas[ctx.rank()],
                    thresholds,
                    batch,
                )
            });
            let mut oks = Vec::with_capacity(results.len());
            let mut failures = Vec::new();
            for r in results {
                match r {
                    Ok(u) => oks.push(u),
                    Err(f) => failures.push(f),
                }
            }
            if !failures.is_empty() {
                return Err(SessionError::Load(LoadError {
                    attempts: 1,
                    failures,
                }));
            }
            oks
        };
        let mut promoted = false;
        for update in &updates {
            promoted |= !update.promoted.is_empty();
            self.deltas[update.rank].merge(update);
        }
        self.delta_log.extend(
            batch
                .iter()
                .filter(|e| !e.is_self_loop())
                .map(|e| e.canonical()),
        );
        self.epoch += 1;
        if promoted || self.delta_entries() >= DELTA_COMPACT_THRESHOLD {
            self.compact()?;
        }
        Ok(self.epoch)
    }

    /// Merge the delta overlays into the base CSRs by rebuilding the
    /// 1.5D partition over the union edge list — byte-identical to a
    /// fresh build over that list, because both run the very same
    /// `build_1p5d` over the very same deduplicated canonical edges in
    /// the same rank-strided chunks.
    ///
    /// # Errors
    /// [`SessionError::Load`] when the rebuild loses ranks; the session
    /// keeps its pre-compaction state in that case.
    pub fn compact(&mut self) -> Result<(), SessionError> {
        let n = self.num_vertices();
        let p = self.num_ranks();
        let union_edges: Vec<Edge> = {
            let mut set = canonical_edge_set(&self.parts);
            set.extend(self.delta_log.iter().map(|e| (e.u, e.v)));
            set.into_iter().map(|(u, v)| Edge::new(u, v)).collect()
        };
        let thresholds = self.cfg.thresholds;
        let results = {
            let union_edges = &union_edges;
            self.cluster.run_fallible(move |ctx| {
                let chunk: Vec<Edge> = union_edges
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % p == ctx.rank())
                    .map(|(_, e)| *e)
                    .collect();
                build_1p5d(ctx, n, &chunk, thresholds)
            })
        };
        let mut parts = Vec::with_capacity(results.len());
        let mut failures = Vec::new();
        for r in results {
            match r {
                Ok(part) => parts.push(part),
                Err(f) => failures.push(f),
            }
        }
        if !failures.is_empty() {
            return Err(SessionError::Load(LoadError {
                attempts: 1,
                failures,
            }));
        }
        self.partition_stats = parts.iter().map(|part| part.stats).collect();
        self.parts = parts;
        for d in &mut self.deltas {
            d.clear();
        }
        self.delta_log.clear();
        self.compactions += 1;
        Ok(())
    }

    /// Incrementally repair a cached base-graph BFS result against the
    /// resident delta: re-expand only from insert endpoints whose depth
    /// improves, mutating `parents`/`depths` in place into the exact
    /// answer over the union graph. A no-op (zero seeds) when the
    /// overlay is empty.
    pub fn repair_result(&self, parents: &mut [u64], depths: &mut [u64]) -> RepairStats {
        let adj = UnionAdjacency::new(&self.parts, &self.deltas);
        repair_in_place(&adj, &self.delta_log, parents, depths)
    }

    /// Sequential reference BFS over the union graph (base + delta) —
    /// the oracle the repair path is validated against.
    pub fn union_bfs(&self, root: u64) -> (Vec<u64>, Vec<u64>) {
        UnionAdjacency::new(&self.parts, &self.deltas).full_bfs(root)
    }

    /// One bit-parallel multi-source traversal over the resident
    /// partition. Rank-indexed results; an `Err` entry is a lost rank
    /// (callers fall back to [`Self::run_single_recoverable`]), an
    /// inner `Err` is a replicated engine error.
    pub fn run_batch(
        &self,
        roots: &[u64],
    ) -> Vec<Result<Result<BatchOutput, EngineError>, RankFailure>> {
        let parts = &self.parts;
        let engine = self.cfg.engine;
        self.cluster
            .run_fallible(move |ctx| run_bfs_batch(ctx, &parts[ctx.rank()], roots, &engine))
    }

    /// One single-source traversal (the sequential baseline path).
    pub fn run_single(
        &self,
        root: u64,
    ) -> Vec<Result<Result<BfsOutput, EngineError>, RankFailure>> {
        let parts = &self.parts;
        let engine = self.cfg.engine;
        self.cluster
            .run_fallible(move |ctx| run_bfs(ctx, &parts[ctx.rank()], root, &engine))
    }

    /// The sequential baseline shape: every root, one at a time, inside
    /// one SPMD pass (the driver's per-root loop against the resident
    /// partition). Rank-indexed; inner vector is root-indexed.
    #[allow(clippy::type_complexity)]
    pub fn run_seq_loop(
        &self,
        roots: &[u64],
    ) -> Vec<Result<Vec<Result<BfsOutput, EngineError>>, RankFailure>> {
        let parts = &self.parts;
        let engine = self.cfg.engine;
        self.cluster.run_fallible(move |ctx| {
            roots
                .iter()
                .map(|&root| run_bfs(ctx, &parts[ctx.rank()], root, &engine))
                .collect()
        })
    }

    /// One checkpointed single-source traversal — the per-root recovery
    /// path a degraded batch falls back to. Resumes from `store`'s last
    /// verified common checkpoint when one exists.
    pub fn run_single_recoverable(
        &self,
        root: u64,
        store: &CheckpointStore,
    ) -> Vec<Result<Result<BfsOutput, EngineError>, RankFailure>> {
        let parts = &self.parts;
        let engine = self.cfg.engine;
        self.cluster.run_fallible(move |ctx| {
            run_bfs_recoverable(ctx, &parts[ctx.rank()], root, &engine, Some(store))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_net::{FaultEvent, FaultKind};

    #[test]
    fn session_loads_once_and_serves_repeatedly() {
        let session =
            GraphSession::load(SessionConfig::small(8, 4), FaultPlan::none()).expect("clean load");
        assert_eq!(session.load_attempts, 1);
        assert_eq!(session.partition_stats.len(), 4);
        // Two traversals against the same resident partition.
        for root in [1u64, 2] {
            let outs = session.run_batch(&[root]);
            for r in outs {
                r.expect("no rank failure").expect("terminates");
            }
        }
    }

    #[test]
    fn load_retries_through_a_transient_build_fault() {
        // A panic early in the build (op 1) kills the first attempt;
        // fire-once semantics heal the retry.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 1,
            op_index: 1,
            kind: FaultKind::Panic,
        }]);
        let session =
            GraphSession::load(SessionConfig::small(8, 4), plan).expect("retry heals the load");
        assert_eq!(session.load_attempts, 2);
        assert_eq!(session.cluster().fault_log().len(), 1);
    }

    #[test]
    fn failed_attempts_accumulate_into_load_sim_seconds() {
        // A late-build panic lets the other ranks finish real work on
        // the failed attempt, so the accumulated load cost must exceed
        // the successful attempt's build cost alone.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 1,
            op_index: 6,
            kind: FaultKind::Panic,
        }]);
        let session = GraphSession::load(SessionConfig::small(8, 4), plan).expect("retry heals");
        assert_eq!(session.load_attempts, 2);
        assert!(
            session.load_sim_seconds > session.build_sim_seconds,
            "failed attempt's sim seconds ({} total) must be visible beyond the \
             clean build's {}",
            session.load_sim_seconds,
            session.build_sim_seconds
        );

        let clean =
            GraphSession::load(SessionConfig::small(8, 4), FaultPlan::none()).expect("clean load");
        assert_eq!(clean.load_attempts, 1);
        assert_eq!(clean.load_sim_seconds, clean.build_sim_seconds);
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sunbfs_session_{tag}_{}.sbfs", std::process::id()))
    }

    #[test]
    fn save_then_open_restores_the_same_partition() {
        let cfg = SessionConfig::small(8, 4);
        let mut built = GraphSession::load(cfg, FaultPlan::none()).expect("clean load");
        let path = temp_store("roundtrip");
        let info = built.save(&path).expect("save");
        assert_eq!(info.file_bytes % sunbfs_store::PAGE_SIZE as u64, 0);
        let activity = built.store.as_ref().expect("save recorded");
        assert!(activity.saved && !activity.opened);
        assert!(activity.cold_build_wall_seconds.is_some());

        let opened = GraphSession::open(&path, cfg, FaultPlan::none()).expect("open");
        std::fs::remove_file(&path).ok();
        assert_eq!(opened.load_attempts, 0);
        assert_eq!(opened.build_sim_seconds, 0.0);
        assert_eq!(opened.partition_stats, built.partition_stats);
        let activity = opened.store.as_ref().expect("open recorded");
        assert!(activity.opened && !activity.saved);
        assert!(activity.warm_open_wall_seconds.is_some());
        // Traversals against the opened partition still terminate.
        for r in opened.run_batch(&[1]) {
            r.expect("no rank failure").expect("terminates");
        }
    }

    #[test]
    fn open_refuses_a_mismatched_header() {
        let cfg = SessionConfig::small(8, 4);
        let mut built = GraphSession::load(cfg, FaultPlan::none()).expect("clean load");
        let path = temp_store("mismatch");
        built.save(&path).expect("save");
        let mut other = cfg;
        other.seed = 7;
        let err = match GraphSession::open(&path, other, FaultPlan::none()) {
            Ok(_) => panic!("a mismatched header must not open"),
            Err(e) => e,
        };
        std::fs::remove_file(&path).ok();
        match err {
            SessionError::Store(sunbfs_store::StoreError::HeaderMismatch { field, .. }) => {
                assert_eq!(field, "seed")
            }
            other => panic!("expected HeaderMismatch, got {other:?}"),
        }
    }

    #[test]
    fn apply_updates_bumps_epoch_and_repair_matches_recompute() {
        let mut session =
            GraphSession::load(SessionConfig::small(8, 4), FaultPlan::none()).expect("clean load");
        assert_eq!(session.epoch(), 0);
        assert!(!session.has_delta());

        // A fresh-vertex chain plus a shortcut into the core: depths
        // genuinely change, so the repair has real work to do.
        let n = session.num_vertices();
        let batch = [
            Edge::new(0, n - 1),
            Edge::new(n - 1, n - 2),
            Edge::new(1, n - 3),
        ];
        // Base-graph result first, as the service would cache it.
        let (mut parents, mut depths) = {
            let (p, d) = {
                let before = session.union_bfs(1);
                assert!(session.delta_log().is_empty(), "no delta before commit");
                before
            };
            (p, d)
        };
        let epoch = session.apply_updates(&batch).expect("commit");
        assert_eq!(epoch, 1);
        assert_eq!(session.epoch(), 1);
        assert!(session.has_delta(), "small batch stays in the overlay");
        assert_eq!(session.delta_log().len(), 3);

        let stats = session.repair_result(&mut parents, &mut depths);
        assert!(stats.seeds > 0, "inserted endpoints must seed the repair");
        let (_, fresh_depths) = session.union_bfs(1);
        assert_eq!(depths, fresh_depths, "repair must be depth-identical");
        // The repaired tree stays a valid BFS tree over the union graph.
        for v in 0..n {
            let (p, d) = (parents[v as usize], depths[v as usize]);
            if p == sunbfs_common::INVALID_VERTEX || v == 1 {
                continue;
            }
            assert_eq!(depths[p as usize] + 1, d, "vertex {v} parent depth");
        }
    }

    #[test]
    fn a_promotion_forces_immediate_compaction() {
        let mut session =
            GraphSession::load(SessionConfig::small(8, 4), FaultPlan::none()).expect("clean load");
        // Lower thresholds would promote easily, but SessionConfig::small
        // uses (256, 64): push one vertex over h = 64 with a fan of
        // inserts to distinct neighbors.
        let hub = 3u64;
        let n = session.num_vertices();
        let batch: Vec<Edge> = (0..80u64)
            .map(|i| Edge::new(hub, (hub + 7 + i * 3) % n))
            .collect();
        session.apply_updates(&batch).expect("commit");
        assert_eq!(session.epoch(), 1);
        assert_eq!(
            session.compactions(),
            1,
            "crossing h_threshold must compact immediately"
        );
        assert!(!session.has_delta(), "compaction drains the overlay");
        assert!(session.delta_log().is_empty());
        // Post-compaction queries still serve and agree with the oracle.
        let (_, d) = session.union_bfs(hub);
        assert_eq!(d[hub as usize], 0);
    }

    #[test]
    fn save_compacts_and_reopen_demands_the_epoch() {
        let cfg = SessionConfig::small(8, 4);
        let mut session = GraphSession::load(cfg, FaultPlan::none()).expect("clean load");
        let n = session.num_vertices();
        session
            .apply_updates(&[Edge::new(0, n - 1), Edge::new(2, n - 2)])
            .expect("commit");
        assert!(session.has_delta());
        let path = temp_store("epoch");
        session.save(&path).expect("save");
        assert!(
            !session.has_delta(),
            "save must compact the delta into the base CSRs"
        );
        assert_eq!(session.compactions(), 1);

        // Plain open expects a pristine (epoch 0) store — typed refusal.
        let err = match GraphSession::open(&path, cfg, FaultPlan::none()) {
            Ok(_) => panic!("a mutated store must not open at epoch 0"),
            Err(e) => e,
        };
        match err {
            SessionError::Store(StoreError::HeaderMismatch {
                field,
                expected,
                found,
            }) => {
                assert_eq!(field, "epoch");
                assert_eq!((expected, found), (0, 1));
            }
            other => panic!("expected an epoch HeaderMismatch, got {other:?}"),
        }

        // Knowing the epoch opens it; the session resumes there.
        let reopened = GraphSession::open_expecting_epoch(&path, cfg, FaultPlan::none(), 1)
            .expect("epoch-aware open");
        assert_eq!(reopened.epoch(), 1);
        assert_eq!(reopened.partition_stats, session.partition_stats);
        let (_, a) = reopened.union_bfs(0);
        let (_, b) = session.union_bfs(0);
        assert_eq!(a, b, "reopened graph must hold the committed updates");

        // open_or_build adopts the epoch instead of rebuilding over it.
        let adopted =
            GraphSession::open_or_build(&path, cfg, FaultPlan::none()).expect("adopting open");
        std::fs::remove_file(&path).ok();
        let activity = adopted.store.as_ref().expect("activity");
        assert!(
            activity.opened && !activity.saved,
            "a matching mutated store is opened, never rebuilt over"
        );
        assert_eq!(adopted.epoch(), 1);
    }

    #[test]
    fn open_or_build_builds_once_then_opens() {
        let cfg = SessionConfig::small(8, 4);
        let path = temp_store("open_or_build");
        std::fs::remove_file(&path).ok();
        let cold = GraphSession::open_or_build(&path, cfg, FaultPlan::none()).expect("cold");
        let cold_activity = cold.store.as_ref().expect("activity");
        assert!(
            cold_activity.saved && !cold_activity.opened,
            "first call builds and saves"
        );
        let warm = GraphSession::open_or_build(&path, cfg, FaultPlan::none()).expect("warm");
        std::fs::remove_file(&path).ok();
        let warm_activity = warm.store.as_ref().expect("activity");
        assert!(
            warm_activity.opened && !warm_activity.saved,
            "second call opens the file"
        );
        assert_eq!(warm.partition_stats, cold.partition_stats);
    }
}
