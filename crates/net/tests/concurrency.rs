//! Concurrency and cost-model integration tests for the cluster
//! runtime: disjoint scoped collectives must proceed independently,
//! mixed scope sequences must stay consistent, and the cost model must
//! behave sanely at paper-like parameters.

use sunbfs_common::{MachineConfig, SimTime};
use sunbfs_net::{Cluster, MeshShape, Scope, Topology};

#[test]
fn different_rows_collect_concurrently_and_independently() {
    // Each row runs a *different number* of row collectives before the
    // world barrier; rows must not interfere with each other.
    let c = Cluster::new(MeshShape::new(3, 2), MachineConfig::new_sunway());
    let out = c.run(|ctx| {
        let my_row = ctx.row();
        let mut acc = 0u64;
        for i in 0..=(my_row as u64) {
            acc += ctx.allreduce_sum(Scope::Row, "rowwork", ctx.rank() as u64 + i);
        }
        ctx.barrier(Scope::World);
        acc
    });
    // Row r = {2r, 2r+1}: one allreduce of (2r+i)+(2r+1+i) per i in 0..=r.
    let expect = |r: u64| -> u64 { (0..=r).map(|i| (2 * r + i) + (2 * r + 1 + i)).sum() };
    assert_eq!(
        out,
        vec![
            expect(0),
            expect(0),
            expect(1),
            expect(1),
            expect(2),
            expect(2)
        ]
    );
}

#[test]
fn interleaved_row_and_col_collectives_stay_ordered() {
    let c = Cluster::new(MeshShape::new(3, 3), MachineConfig::new_sunway());
    let out = c.run(|ctx| {
        let mut results = Vec::new();
        for round in 0..5u64 {
            let r = ctx.allreduce_sum(Scope::Row, "r", round);
            let cl = ctx.allreduce_sum(Scope::Col, "c", round * 10);
            let w = ctx.allreduce_sum(Scope::World, "w", 1);
            results.push((r, cl, w));
        }
        results
    });
    for ranks in &out {
        for (round, &(r, cl, w)) in ranks.iter().enumerate() {
            assert_eq!(r, 3 * round as u64);
            assert_eq!(cl, 30 * round as u64);
            assert_eq!(w, 9);
        }
    }
}

#[test]
fn alltoallv_volume_asymmetry_is_preserved() {
    // Rank r sends r+1 items to everyone; receivers must see exactly
    // the per-sender sizes.
    let c = Cluster::new(MeshShape::new(2, 2), MachineConfig::new_sunway());
    let out = c.run(|ctx| {
        let n = ctx.nranks();
        let send: Vec<Vec<u32>> = (0..n)
            .map(|_| vec![ctx.rank() as u32; ctx.rank() + 1])
            .collect();
        ctx.alltoallv(Scope::World, "comm.alltoallv", send)
    });
    for recv in &out {
        for (s, batch) in recv.iter().enumerate() {
            assert_eq!(batch.len(), s + 1);
            assert!(batch.iter().all(|&x| x == s as u32));
        }
    }
}

#[test]
fn clock_skew_propagates_through_scoped_collectives() {
    // A slow rank in one row delays its row; the other row is only
    // delayed at the world collective.
    let c = Cluster::new(MeshShape::new(2, 2), MachineConfig::new_sunway());
    let out = c.run(|ctx| {
        if ctx.rank() == 0 {
            ctx.charge("compute", SimTime::secs(5.0));
        }
        ctx.allreduce_sum(Scope::Row, "rowsync", 0);
        let after_row = ctx.now().as_secs();
        ctx.allreduce_sum(Scope::World, "worldsync", 0);
        let after_world = ctx.now().as_secs();
        (after_row, after_world)
    });
    // Row 0 (ranks 0,1) synced to ~5s at the row step; row 1 (ranks 2,3)
    // stayed near zero until the world step.
    assert!(out[0].0 >= 5.0 && out[1].0 >= 5.0);
    assert!(out[2].0 < 1.0 && out[3].0 < 1.0);
    for (_, w) in &out {
        assert!(*w >= 5.0);
    }
}

#[test]
fn paper_scale_cost_model_sanity() {
    // Analytic checks at full-machine parameters: one supernode's worth
    // of alltoallv traffic must cost more across supernodes than inside.
    let m = MachineConfig::new_sunway();
    let topo_flat = Topology::new(MeshShape::new(1, 16));
    let topo_tall = Topology::new(MeshShape::new(16, 1));
    let members: Vec<usize> = (0..16).collect();
    let mb = 1u64 << 20;
    let vol: Vec<Vec<u64>> = (0..16)
        .map(|s| (0..16).map(|d| if s == d { 0 } else { mb }).collect())
        .collect();
    let intra = sunbfs_net::cost::alltoallv_cost(&m, &topo_flat, &members, &vol);
    let inter = sunbfs_net::cost::alltoallv_cost(&m, &topo_tall, &members, &vol);
    assert!(
        inter.as_secs() > intra.as_secs() * 2.0,
        "oversubscription must bite: intra {} vs inter {}",
        intra.as_secs(),
        inter.as_secs()
    );

    // Latency term grows logarithmically, not linearly.
    let lat_16 = sunbfs_net::cost::collective_latency(&m, 16);
    let lat_4096 = sunbfs_net::cost::collective_latency(&m, 4096);
    assert!(lat_4096.as_secs() / lat_16.as_secs() < 4.0);
}

#[test]
fn repeated_runs_reuse_the_cluster() {
    // A Cluster is reusable across run() calls (fresh clocks each time).
    let c = Cluster::new(MeshShape::new(2, 2), MachineConfig::new_sunway());
    for _ in 0..3 {
        let out = c.run(|ctx| {
            ctx.charge("x", SimTime::secs(1.0));
            ctx.barrier(Scope::World);
            ctx.now().as_secs()
        });
        for t in out {
            assert!((t - 1.0).abs() < 1e-12, "clock leaked across runs: {t}");
        }
    }
}

#[test]
fn massive_rank_count_smoke() {
    // 100 rank threads on a small machine: the runtime must stay
    // correct (not fast).
    let c = Cluster::new(MeshShape::new(10, 10), MachineConfig::new_sunway());
    let out = c.run(|ctx| {
        let s = ctx.allreduce_sum(Scope::World, "sum", 1);
        let r = ctx.allreduce_sum(Scope::Row, "row", 1);
        let cl = ctx.allreduce_sum(Scope::Col, "col", 1);
        (s, r, cl)
    });
    assert!(out.iter().all(|&(s, r, c)| s == 100 && r == 10 && c == 10));
}
