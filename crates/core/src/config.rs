//! Engine configuration and direction heuristics (§4.2).
//!
//! Direction-optimizing BFS switches between top-down (*push*) and
//! bottom-up (*pull*) per iteration. The paper refines this to
//! **sub-iteration direction optimization**: each of the six subgraph
//! components chooses its direction independently, with two heuristics:
//!
//! * node-local components (EH2EH, E2L, L2E) look only at the *source
//!   active ratio* — pull workload cannot be estimated from destination
//!   counts because early exit truncates it,
//! * node-crossing components (H2L, L2H, L2L) compare the active-source
//!   ratio against the unvisited-destination ratio, which "directly
//!   reflect the number of messages required to communicate".

/// Traversal direction of one sub-iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Direction {
    /// Top-down: scan active sources, write destinations.
    #[default]
    Push,
    /// Bottom-up: scan unvisited destinations, probe sources; early
    /// exit on first hit.
    Pull,
}

/// The six subgraph components in their §4.2 execution order
/// (higher-degree source/destination first).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// Hub ↔ hub core subgraph (2D-partitioned).
    Eh2Eh,
    /// E → L.
    E2L,
    /// L → E.
    L2E,
    /// H → L.
    H2L,
    /// L → H.
    L2H,
    /// L → L.
    L2L,
}

impl Component {
    /// All components in execution order.
    pub const ALL: [Component; 6] = [
        Component::Eh2Eh,
        Component::E2L,
        Component::L2E,
        Component::H2L,
        Component::L2H,
        Component::L2L,
    ];

    /// Short name used in time-accounting categories.
    pub fn name(self) -> &'static str {
        match self {
            Component::Eh2Eh => "EH2EH",
            Component::E2L => "E2L",
            Component::L2E => "L2E",
            Component::H2L => "H2L",
            Component::L2H => "L2H",
            Component::L2L => "L2L",
        }
    }

    /// True for components whose edges never cross ranks at traversal
    /// time (their direction heuristic uses the source ratio only).
    pub fn is_node_local(self) -> bool {
        matches!(self, Component::Eh2Eh | Component::E2L | Component::L2E)
    }
}

/// Engine configuration. Defaults enable every technique of the paper;
/// the ablation benches (Figure 15) toggle them off one at a time.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Source-active-ratio threshold above which node-local components
    /// switch to pull.
    pub alpha_local: f64,
    /// Crossing components pull when
    /// `unvisited_dst_ratio < beta * active_src_ratio`.
    pub beta_crossing: f64,
    /// Per-component direction selection (§4.2). When off, one global
    /// direction per iteration (vanilla direction optimization — the
    /// Figure 15 baseline).
    pub sub_iteration: bool,
    /// Global active-ratio threshold used by the vanilla mode.
    pub vanilla_alpha: f64,
    /// CG-aware core-subgraph segmenting for the EH2EH pull (§4.3).
    /// When off, probes cost GLD main-memory latency instead of RMA.
    pub segmenting: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            alpha_local: 0.03,
            beta_crossing: 1.0,
            sub_iteration: true,
            vanilla_alpha: 0.03,
            segmenting: true,
        }
    }
}

impl EngineConfig {
    /// The Figure 15 baseline: vanilla direction optimization, no
    /// segmenting.
    pub fn baseline() -> Self {
        EngineConfig {
            sub_iteration: false,
            segmenting: false,
            ..Default::default()
        }
    }

    /// Baseline plus sub-iteration direction optimization (Figure 15
    /// middle bar).
    pub fn with_sub_iteration() -> Self {
        EngineConfig {
            segmenting: false,
            ..Default::default()
        }
    }
}

/// Direction for a node-local component from its source activity.
pub fn choose_local(cfg: &EngineConfig, active_src: u64, total_src: u64) -> Direction {
    if total_src == 0 {
        return Direction::Push;
    }
    if active_src as f64 / total_src as f64 > cfg.alpha_local {
        Direction::Pull
    } else {
        Direction::Push
    }
}

/// Direction for a node-crossing component by comparing the expected
/// message counts of the two directions.
pub fn choose_crossing(
    cfg: &EngineConfig,
    active_src: u64,
    total_src: u64,
    unvisited_dst: u64,
    total_dst: u64,
) -> Direction {
    if total_src == 0 || total_dst == 0 {
        return Direction::Push;
    }
    let active_ratio = active_src as f64 / total_src as f64;
    let unvisited_ratio = unvisited_dst as f64 / total_dst as f64;
    if unvisited_ratio < cfg.beta_crossing * active_ratio {
        Direction::Pull
    } else {
        Direction::Push
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_ordered_by_degree_level() {
        assert_eq!(Component::ALL[0], Component::Eh2Eh);
        assert_eq!(Component::ALL[5], Component::L2L);
        assert!(Component::Eh2Eh.is_node_local());
        assert!(Component::L2E.is_node_local());
        assert!(!Component::H2L.is_node_local());
        assert!(!Component::L2L.is_node_local());
    }

    #[test]
    fn local_heuristic_switches_on_density() {
        let cfg = EngineConfig::default();
        assert_eq!(choose_local(&cfg, 1, 1000), Direction::Push);
        assert_eq!(choose_local(&cfg, 500, 1000), Direction::Pull);
        assert_eq!(choose_local(&cfg, 0, 0), Direction::Push);
    }

    #[test]
    fn crossing_heuristic_compares_ratios() {
        let cfg = EngineConfig::default();
        // Sparse frontier, nearly everything unvisited → push.
        assert_eq!(choose_crossing(&cfg, 10, 1000, 990, 1000), Direction::Push);
        // Dense frontier, few unvisited → pull.
        assert_eq!(choose_crossing(&cfg, 600, 1000, 50, 1000), Direction::Pull);
        // Empty classes never pull.
        assert_eq!(choose_crossing(&cfg, 0, 0, 5, 10), Direction::Push);
    }

    #[test]
    fn ablation_constructors() {
        let b = EngineConfig::baseline();
        assert!(!b.sub_iteration && !b.segmenting);
        let s = EngineConfig::with_sub_iteration();
        assert!(s.sub_iteration && !s.segmenting);
        let full = EngineConfig::default();
        assert!(full.sub_iteration && full.segmenting);
    }
}
