//! Behavioral regression tests: beyond producing correct trees, the
//! engine must *behave* like the paper's — hubs pull early, light
//! vertices activate late, segmenting changes cost but not results,
//! and the delayed parent reduction matches per-iteration semantics.

use sunbfs_common::{MachineConfig, SplitMix64};
use sunbfs_core::{run_bfs, Direction, EngineConfig};
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, Thresholds};
use sunbfs_rmat::RmatParams;

fn rmat_outputs(
    scale: u32,
    ranks: usize,
    th: Thresholds,
    cfg: EngineConfig,
) -> Vec<sunbfs_core::BfsOutput> {
    let params = RmatParams::graph500(scale, 42);
    let n = params.num_vertices();
    let root = sunbfs_rmat::generate_range(&params, 0, 64)
        .iter()
        .find(|e| !e.is_self_loop())
        .unwrap()
        .u;
    let cluster = Cluster::new(MeshShape::near_square(ranks), MachineConfig::new_sunway());
    cluster.run(|ctx| {
        let chunk = sunbfs_rmat::generate_chunk(&params, ctx.rank() as u64, ranks as u64);
        let part = build_1p5d(ctx, n, &chunk, th);
        run_bfs(ctx, &part, root, &cfg).expect("BFS must terminate")
    })
}

#[test]
fn eh2eh_pulls_before_l2l_does() {
    // Sub-iteration direction optimization's raison d'être (§4.2): the
    // hub core subgraph flips to bottom-up strictly earlier than (or at
    // the same iteration as) the light-light component.
    let outs = rmat_outputs(14, 16, Thresholds::new(512, 64), EngineConfig::default());
    let iters = &outs[0].stats.iterations;
    let first_pull = |idx: usize| {
        iters
            .iter()
            .find(|it| it.directions[idx] == Direction::Pull)
            .map(|it| it.iter)
            .unwrap_or(u32::MAX)
    };
    let eh = first_pull(0);
    let l2l = first_pull(5);
    assert!(eh <= l2l, "EH2EH first pulled at {eh}, after L2L at {l2l}");
    assert!(
        eh != u32::MAX,
        "the dense R-MAT core must trigger an EH2EH pull"
    );
}

#[test]
fn hubs_activate_earlier_than_light_vertices() {
    let outs = rmat_outputs(14, 16, Thresholds::new(512, 64), EngineConfig::default());
    let iters = &outs[0].stats.iterations;
    let peak = |f: &dyn Fn(&sunbfs_core::IterationStats) -> u64| {
        iters.iter().max_by_key(|it| f(it)).unwrap().iter
    };
    assert!(peak(&|it| it.newly_e) <= peak(&|it| it.newly_l));
    assert!(peak(&|it| it.newly_h) <= peak(&|it| it.newly_l));
}

#[test]
fn iteration_stats_are_replicated_consistently() {
    let outs = rmat_outputs(12, 9, Thresholds::new(256, 32), EngineConfig::default());
    let first = &outs[0].stats.iterations;
    for o in &outs[1..] {
        assert_eq!(o.stats.iterations.len(), first.len());
        for (a, b) in o.stats.iterations.iter().zip(first) {
            assert_eq!(a.active_e, b.active_e);
            assert_eq!(a.active_h, b.active_h);
            assert_eq!(a.active_l, b.active_l);
            assert_eq!(a.newly_l, b.newly_l);
            assert_eq!(a.directions, b.directions);
        }
    }
}

#[test]
fn segmenting_changes_time_not_results() {
    let th = Thresholds::new(256, 32);
    let with = EngineConfig {
        segmenting: true,
        ..Default::default()
    };
    let without = EngineConfig {
        segmenting: false,
        ..Default::default()
    };

    let a = rmat_outputs(13, 9, th, with);
    let b = rmat_outputs(13, 9, th, without);
    // Identical traversals...
    let pa: Vec<u64> = a.iter().flat_map(|o| o.parents.iter().copied()).collect();
    let pb: Vec<u64> = b.iter().flat_map(|o| o.parents.iter().copied()).collect();
    assert_eq!(pa, pb, "segmenting is a cost-only technique");
    // ...but the segmented pull kernel must be cheaper whenever the
    // engine actually pulled EH2EH.
    let pull_time = |outs: &[sunbfs_core::BfsOutput]| -> f64 {
        outs.iter()
            .map(|o| o.stats.times.total_with_prefix("sub.EH2EH.pull").as_secs())
            .sum()
    };
    let (ta, tb) = (pull_time(&a), pull_time(&b));
    if tb > 0.0 {
        // The 9x RMA/GLD gap applies to the probe component; the
        // category also carries the (identical) adjacency streaming, so
        // the end-to-end factor is smaller at small scales. The strict
        // per-probe ratio is pinned in `costing`'s unit tests.
        assert!(ta < tb, "segmented pull {ta} should beat unsegmented {tb}");
    }
}

#[test]
fn gteps_counts_only_component_edges() {
    // Two disconnected halves: traversing one half must report roughly
    // half the edges.
    use sunbfs_common::Edge;
    let n = 128u64;
    let mut rng = SplitMix64::new(5);
    let mut edges = Vec::new();
    for _ in 0..400 {
        edges.push(Edge::new(rng.next_below(n / 2), rng.next_below(n / 2)));
        edges.push(Edge::new(
            n / 2 + rng.next_below(n / 2),
            n / 2 + rng.next_below(n / 2),
        ));
    }
    let cluster = Cluster::new(MeshShape::new(2, 2), MachineConfig::new_sunway());
    let outs = cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        let part = build_1p5d(ctx, n, &chunk, Thresholds::new(64, 16));
        run_bfs(ctx, &part, 0, &EngineConfig::default()).expect("BFS must terminate")
    });
    let traversed = outs[0].stats.traversed_edges;
    let total = edges.len() as u64;
    assert!(
        traversed < total * 3 / 4,
        "traversed {traversed} of {total} — the other component leaked into TEPS"
    );
}

#[test]
fn vanilla_mode_uses_one_direction_per_iteration() {
    let outs = rmat_outputs(13, 9, Thresholds::new(256, 32), EngineConfig::baseline());
    for it in &outs[0].stats.iterations {
        let d0 = it.directions[0];
        assert!(
            it.directions.iter().all(|&d| d == d0),
            "vanilla direction optimization must not mix directions: {:?}",
            it.directions
        );
    }
}

#[test]
fn deterministic_across_runs() {
    let a = rmat_outputs(12, 9, Thresholds::new(256, 32), EngineConfig::default());
    let b = rmat_outputs(12, 9, Thresholds::new(256, 32), EngineConfig::default());
    let pa: Vec<u64> = a.iter().flat_map(|o| o.parents.iter().copied()).collect();
    let pb: Vec<u64> = b.iter().flat_map(|o| o.parents.iter().copied()).collect();
    assert_eq!(pa, pb, "engine must be bit-deterministic");
    assert_eq!(a[0].stats.sim_seconds, b[0].stats.sim_seconds);
}
