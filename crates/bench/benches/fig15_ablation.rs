//! **Figure 15** — time breakdown for different levels of optimization.
//!
//! Paper (§6.4), SCALE 35 on 256 nodes, three engine configurations:
//!
//! * **Baseline** — vanilla whole-iteration direction optimization, no
//!   core-subgraph segmenting;
//! * **+ Sub-Iter.** — per-component direction selection replaces the
//!   expensive hub pushes with cheap pulls;
//! * **+ Segment.** — CG-aware segmenting makes the EH2EH pull kernel
//!   9× faster on its own.
//!
//! The bars split time into EH2EH Pull / Others Pull / EH2EH Push /
//! Others Push / Others. This harness reproduces all three bars.

use sunbfs_bench::{group_by_phase_direction, print_percentages, run_config};
use sunbfs_core::EngineConfig;
use sunbfs_part::Thresholds;

fn main() {
    let scale = 18;
    let ranks = 16;
    let roots = 2;
    let thresholds = Thresholds::new(4096, 64);
    println!("=== Figure 15: ablation of sub-iteration DO and CG segmenting ===");
    println!("    (SCALE {scale}, {ranks} ranks, {roots} roots)\n");

    let configs: Vec<(&str, EngineConfig)> = vec![
        ("Baseline", EngineConfig::baseline()),
        ("+ Sub-Iter.", EngineConfig::with_sub_iteration()),
        ("+ Segment.", EngineConfig::default()),
    ];

    let mut totals = Vec::new();
    let mut kernel_totals = Vec::new();
    let mut eh_pulls = Vec::new();
    for (name, engine) in configs {
        let cfg = run_config(scale, ranks, thresholds, engine, roots);
        let report = sunbfs::driver::run_benchmark(&cfg).expect("benchmark must pass");
        let times = report.total_times();
        // The paper's figure breaks down *kernel* time; communication is
        // Figure 11's axis. Keep the sub-iteration compute categories
        // plus a residual "Others" of everything else scaled out.
        let groups = group_by_phase_direction(&times);
        println!("--- {name} ({:.3} GTEPS) ---", report.harmonic_mean_gteps());
        let kernel_only: Vec<(String, f64)> = groups
            .iter()
            .filter(|(n, _)| n != "Others")
            .cloned()
            .collect();
        print_percentages("kernel time breakdown", &kernel_only);
        println!();
        totals.push((name, times.total().as_secs()));
        kernel_totals.push(kernel_only.iter().map(|(_, s)| s).sum::<f64>());
        eh_pulls.push(groups.iter().find(|(n, _)| n == "EH2EH Pull").unwrap().1);
    }

    println!("summary (kernel time normalized to Baseline = 1.0):");
    let base = kernel_totals[0];
    for ((name, _), kt) in totals.iter().zip(&kernel_totals) {
        println!("  {name:<12} {:.3}", kt / base);
    }
    if eh_pulls[1] > 0.0 {
        println!(
            "\n  EH2EH pull kernel time, sub-iter vs +segmenting: {:.1}x faster (paper: 9x)",
            eh_pulls[1] / eh_pulls[2].max(f64::MIN_POSITIVE)
        );
    }
    assert!(
        totals[2].1 <= totals[0].1,
        "fully optimized engine must not be slower than the baseline"
    );
}
