//! Deterministic fault injection for the SPMD runtime.
//!
//! The paper's run spans 103,912 nodes — a scale where rank loss,
//! stragglers, and corrupted messages are operational reality. This
//! module lets a test (or a chaos-minded operator) script those
//! failures *deterministically*: a [`FaultPlan`] names, per rank, the
//! collective call index at which a fault fires and what kind it is.
//!
//! Three fault kinds model the three failure classes:
//!
//! * [`FaultKind::Panic`] — the rank dies on entry to the collective
//!   (node loss). The runtime converts it into a typed
//!   [`InjectedFault`] unwind that poisons all barriers, so the rest of
//!   the cluster tears down instead of deadlocking.
//! * [`FaultKind::Straggler`] — the rank is delayed before the
//!   collective. The delay is charged to the rank's *simulated* clock
//!   (so every other rank records it as `comm.imbalance` skew, exactly
//!   like a slow node in Figure 11) and, capped, to real time so the
//!   thread interleaving also skews.
//! * [`FaultKind::Corrupt`] — the rank's payload is bit-flipped or
//!   truncated before deposit, exercising the exchange layer's payload
//!   framing (checksum verification + bounded retransmit) rather than
//!   sailing through to the Graph 500 validator.
//!
//! Every planned event fires **at most once per cluster lifetime**
//! (transient-fault model): a retry of the same SPMD run on the same
//! [`crate::Cluster`] will not re-hit a consumed fault, which is what
//! makes bounded retry-with-backoff in the driver meaningful.
//!
//! Duplicate `(rank, op_index)` events are legal and meaningful: each
//! occurrence is an independent transient event, consumed one per
//! [`FaultPlan::fire`] call in listed order. Listing the same
//! corruption N times therefore models a *persistent* fault — each
//! retransmission of the deposit re-fires the next duplicate, so N−1
//! retransmit attempts are defeated before the exchange either heals
//! (N ≤ its retransmit budget) or escalates to a typed
//! `CorruptPayload` failure.
//!
//! Plans come from three places, in driver precedence order:
//! explicit events in the `SUNBFS_FAULT_PLAN` environment variable
//! ([`FaultPlan::parse`]), a seeded [`FaultSpec`] carried by the run
//! configuration ([`FaultPlan::generate`]), or none.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};

use sunbfs_common::{JsonValue, SplitMix64, ToJson};

use crate::cost::Scope;

/// How a payload is corrupted before deposit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptMode {
    /// XOR the low bit of the first element (silent data corruption).
    BitFlip,
    /// Drop the last element (length/contract corruption).
    Truncate,
}

/// What one planned fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The rank panics on entry to the collective.
    Panic,
    /// The rank is delayed `secs` simulated seconds before the
    /// collective (plus a capped real-time sleep).
    Straggler {
        /// Simulated delay in seconds.
        secs: f64,
    },
    /// The rank's payload is corrupted before deposit.
    Corrupt {
        /// Corruption flavor.
        mode: CorruptMode,
    },
}

impl FaultKind {
    /// Stable label used in logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Straggler { .. } => "straggler",
            FaultKind::Corrupt {
                mode: CorruptMode::BitFlip,
            } => "corrupt.bitflip",
            FaultKind::Corrupt {
                mode: CorruptMode::Truncate,
            } => "corrupt.truncate",
        }
    }
}

/// One planned injection: `kind` fires on `rank` at that rank's
/// `op_index`-th collective call (0-based, all scopes counted together
/// in program order) within one SPMD run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Global rank the fault targets.
    pub rank: usize,
    /// 0-based collective call index on that rank within one run.
    pub op_index: u64,
    /// What fires.
    pub kind: FaultKind,
}

/// Seeded, `Copy` recipe for generating a [`FaultPlan`] — the form a
/// run configuration carries. All counts zero means "no faults".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Seed of the deterministic event-placement stream.
    pub seed: u64,
    /// Number of injected rank panics.
    pub panics: u32,
    /// Number of injected straggler delays.
    pub stragglers: u32,
    /// Number of injected payload corruptions.
    pub corruptions: u32,
    /// Simulated seconds each straggler is delayed.
    pub straggler_secs: f64,
    /// Collective-index horizon events are scattered over (`op_index`
    /// is drawn from `[0, horizon)`; `0` is treated as `1`).
    pub horizon: u64,
}

impl FaultSpec {
    /// No faults.
    pub const NONE: FaultSpec = FaultSpec {
        seed: 0,
        panics: 0,
        stragglers: 0,
        corruptions: 0,
        straggler_secs: 0.0,
        horizon: 0,
    };

    /// True when the spec plans no events at all.
    pub fn is_none(&self) -> bool {
        self.panics == 0 && self.stragglers == 0 && self.corruptions == 0
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::NONE
    }
}

/// A deterministic schedule of fault injections, with per-event
/// fired-once bookkeeping (transient-fault model).
///
/// Besides the static schedule fixed at construction, a plan can be
/// **armed** for live injection ([`FaultPlan::armed`]): events added
/// later through [`FaultPlan::inject`] — by a chaos harness, against a
/// cluster that is already serving — fire exactly once each, like
/// planned ones. Arming matters for safety: the exchange layer decides
/// per collective whether payload framing is active by asking
/// [`FaultPlan::is_empty`], and every rank of one SPMD run must see
/// the same answer. An armed plan reports non-empty from the start, so
/// injection can race a run without desynchronizing the ranks; on an
/// unarmed plan, `inject` must only be called between runs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    fired: Vec<AtomicBool>,
    /// Live-injected events, each consumed by its first matching fire.
    injected: std::sync::Mutex<Vec<FaultEvent>>,
    /// Events ever injected (never decremented: once live injection has
    /// happened — or was armed for — framing stays on for the cluster's
    /// lifetime, keeping the per-exchange `is_empty` check stable).
    injected_ever: std::sync::atomic::AtomicU64,
    /// Pre-declares live injection so `is_empty` is false from birth.
    armed: bool,
}

impl FaultPlan {
    /// The empty plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan pre-armed for live injection: it schedules nothing
    /// yet, but reports non-empty so the exchange layer keeps payload
    /// framing on and [`FaultPlan::inject`] is safe at any time.
    pub fn armed() -> Self {
        FaultPlan {
            armed: true,
            ..FaultPlan::default()
        }
    }

    /// A plan firing exactly `events`.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        let fired = events.iter().map(|_| AtomicBool::new(false)).collect();
        FaultPlan {
            events,
            fired,
            ..FaultPlan::default()
        }
    }

    /// Deterministically place `spec`'s events over `nranks` ranks and
    /// the spec's collective-index horizon. Identical `(spec, nranks)`
    /// always yields the identical schedule.
    pub fn generate(spec: &FaultSpec, nranks: usize) -> Self {
        if spec.is_none() || nranks == 0 {
            return FaultPlan::none();
        }
        let mut rng = SplitMix64::new(spec.seed ^ 0xFA_07_1E_C7);
        let horizon = spec.horizon.max(1);
        let mut events = Vec::new();
        let mut place = |kind: FaultKind, count: u32, events: &mut Vec<FaultEvent>| {
            for _ in 0..count {
                events.push(FaultEvent {
                    rank: rng.next_below(nranks as u64) as usize,
                    op_index: rng.next_below(horizon),
                    kind,
                });
            }
        };
        place(FaultKind::Panic, spec.panics, &mut events);
        place(
            FaultKind::Straggler {
                secs: spec.straggler_secs,
            },
            spec.stragglers,
            &mut events,
        );
        for i in 0..spec.corruptions {
            let mode = if i % 2 == 0 {
                CorruptMode::BitFlip
            } else {
                CorruptMode::Truncate
            };
            place(FaultKind::Corrupt { mode }, 1, &mut events);
        }
        FaultPlan::from_events(events)
    }

    /// Parse an explicit event list:
    /// `panic@<rank>:<idx>;straggle@<rank>:<idx>:<secs>;corrupt@<rank>:<idx>:<bitflip|truncate>`
    /// (events separated by `;`, whitespace ignored).
    ///
    /// Duplicate `(rank, op_index)` specs are accepted, not rejected:
    /// each occurrence fires once, in listed order (see [`Self::fire`]).
    /// `corrupt@0:3:bitflip;corrupt@0:3:bitflip` is the grammar for a
    /// persistent corruption that also defeats the first retransmit.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut events = Vec::new();
        for part in s.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (verb, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("fault event '{part}' is missing '@'"))?;
            let fields: Vec<&str> = rest.split(':').collect();
            let need = |n: usize| -> Result<(), String> {
                if fields.len() == n {
                    Ok(())
                } else {
                    Err(format!(
                        "fault event '{part}' needs {n} ':'-separated fields, got {}",
                        fields.len()
                    ))
                }
            };
            let rank = fields
                .first()
                .and_then(|f| f.trim().parse::<usize>().ok())
                .ok_or_else(|| format!("fault event '{part}' has a bad rank"))?;
            let op_index = fields
                .get(1)
                .and_then(|f| f.trim().parse::<u64>().ok())
                .ok_or_else(|| format!("fault event '{part}' has a bad op index"))?;
            let kind = match verb.trim() {
                "panic" => {
                    need(2)?;
                    FaultKind::Panic
                }
                "straggle" => {
                    need(3)?;
                    let secs = fields[2]
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| format!("fault event '{part}' has a bad delay"))?;
                    FaultKind::Straggler { secs }
                }
                "corrupt" => {
                    need(3)?;
                    let mode = match fields[2].trim() {
                        "bitflip" => CorruptMode::BitFlip,
                        "truncate" => CorruptMode::Truncate,
                        other => {
                            return Err(format!(
                                "fault event '{part}' has unknown corrupt mode '{other}'"
                            ))
                        }
                    };
                    FaultKind::Corrupt { mode }
                }
                other => return Err(format!("unknown fault verb '{other}' in '{part}'")),
            };
            events.push(FaultEvent {
                rank,
                op_index,
                kind,
            });
        }
        Ok(FaultPlan::from_events(events))
    }

    /// Read `SUNBFS_FAULT_PLAN` from the environment; `Ok(None)` when
    /// unset, `Err` when set but unparsable.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("SUNBFS_FAULT_PLAN") {
            Ok(s) => FaultPlan::parse(&s).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// The planned events (fired or not). Live-injected events are not
    /// listed here — see [`FaultPlan::injected_ever`].
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no events are planned, none were ever injected, and
    /// the plan is not armed for live injection. The exchange layer
    /// keys payload framing off this, so it is monotone: once false,
    /// false forever.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && !self.armed && self.injected_ever.load(Ordering::Acquire) == 0
    }

    /// Arm `events` on a live plan: each fires exactly once at its
    /// `(rank, op_index)`, like a planned event, then is consumed.
    ///
    /// Safe at any time on an [`armed`](FaultPlan::armed) plan (or once
    /// anything was already planned/injected). On a plan that is still
    /// empty and unarmed, call only between SPMD runs — the first
    /// injection flips [`FaultPlan::is_empty`], and every rank of one
    /// run must agree on it.
    pub fn inject(&self, events: impl IntoIterator<Item = FaultEvent>) {
        let mut pending = self.injected.lock().expect("fault plan lock poisoned");
        let before = pending.len();
        pending.extend(events);
        let added = (pending.len() - before) as u64;
        self.injected_ever.fetch_add(added, Ordering::AcqRel);
    }

    /// Live-injected events not yet consumed by a fire.
    pub fn injected_pending(&self) -> usize {
        self.injected
            .lock()
            .expect("fault plan lock poisoned")
            .len()
    }

    /// Events ever live-injected (fired or not).
    pub fn injected_ever(&self) -> u64 {
        self.injected_ever.load(Ordering::Acquire)
    }

    /// Consume and return the first unfired event matching
    /// `(rank, op_index)`. Each event fires at most once per plan (and
    /// the plan lives as long as its cluster), so retried runs observe
    /// a transient fault exactly once.
    ///
    /// Duplicate `(rank, op_index)` events each fire once, in listed
    /// order — one `fire` call consumes exactly one. The exchange
    /// layer's retransmit path calls `fire` again for the replacement
    /// deposit, so duplicates are the mechanism for persistent faults.
    pub fn fire(&self, rank: usize, op_index: u64) -> Option<FaultKind> {
        for (e, fired) in self.events.iter().zip(&self.fired) {
            if e.rank == rank
                && e.op_index == op_index
                && fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(e.kind);
            }
        }
        // Live-injected events: consumed (removed) on fire, so each is
        // a transient fault exactly like a planned one. The lock is
        // only contended when a plan is non-empty, i.e. when framing
        // overhead is already being paid.
        if self.injected_ever.load(Ordering::Acquire) > 0 {
            let mut pending = self.injected.lock().expect("fault plan lock poisoned");
            if let Some(i) = pending
                .iter()
                .position(|e| e.rank == rank && e.op_index == op_index)
            {
                return Some(pending.remove(i).kind);
            }
        }
        None
    }
}

/// The typed unwind payload of an injected [`FaultKind::Panic`]:
/// [`crate::Cluster::run_fallible`] downcasts it back into a
/// [`crate::RankFailure`] so the driver sees a structured failure, not
/// a stringly panic.
#[derive(Clone, Debug)]
pub struct InjectedFault {
    /// Rank that was killed.
    pub rank: usize,
    /// Collective call index at which it died.
    pub op_index: u64,
    /// Op tag of the collective it died entering.
    pub op: String,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected panic on rank {} at collective {} ('{}')",
            self.rank, self.op_index, self.op
        )
    }
}

/// One fault that actually fired, as recorded in the cluster's log.
#[derive(Clone, Debug)]
pub struct FaultRecord {
    /// Rank the fault fired on.
    pub rank: usize,
    /// Collective call index it fired at.
    pub op_index: u64,
    /// Scope of the collective.
    pub scope: Scope,
    /// Op tag of the collective.
    pub op: String,
    /// What fired.
    pub kind: FaultKind,
    /// The rank's simulated clock when it fired.
    pub sim_seconds: f64,
    /// Whether the fault had an effect (a corruption of an
    /// un-corruptible payload type is logged but not applied).
    pub applied: bool,
}

impl ToJson for FaultRecord {
    fn to_json(&self) -> JsonValue {
        let secs = match self.kind {
            FaultKind::Straggler { secs } => secs,
            _ => 0.0,
        };
        JsonValue::object()
            .field("rank", self.rank)
            .field("op_index", self.op_index)
            .field("scope", crate::cluster::scope_label(self.scope))
            .field("op", self.op.as_str())
            .field("kind", self.kind.label())
            .field("secs", secs)
            .field("applied", self.applied)
            .field("sim_seconds", self.sim_seconds)
            .build()
    }
}

/// Best-effort payload corruption through `Any`: the collectives are
/// generic, so corruption knows the concrete payload types the engine
/// actually ships (scalar/bitmap words, byte/word/pair vectors, and
/// alltoallv send sets of the same). Returns whether anything changed.
///
/// Invariant: every type this function can damage is covered by
/// `crate::frame::frame_any`, so no applied corruption can evade the
/// exchange layer's checksum verification.
pub(crate) fn corrupt_any(payload: &mut (dyn Any + Send + Sync), mode: CorruptMode) -> bool {
    fn corrupt_u64s(v: &mut Vec<u64>, mode: CorruptMode) -> bool {
        match mode {
            CorruptMode::BitFlip => match v.first_mut() {
                Some(x) => {
                    *x ^= 1;
                    true
                }
                None => false,
            },
            CorruptMode::Truncate => v.pop().is_some(),
        }
    }
    if let Some(v) = payload.downcast_mut::<Vec<u64>>() {
        return corrupt_u64s(v, mode);
    }
    if let Some(v) = payload.downcast_mut::<Vec<u32>>() {
        return match mode {
            CorruptMode::BitFlip => match v.first_mut() {
                Some(x) => {
                    *x ^= 1;
                    true
                }
                None => false,
            },
            CorruptMode::Truncate => v.pop().is_some(),
        };
    }
    if let Some(v) = payload.downcast_mut::<Vec<u8>>() {
        return match mode {
            CorruptMode::BitFlip => match v.first_mut() {
                Some(x) => {
                    *x ^= 1;
                    true
                }
                None => false,
            },
            CorruptMode::Truncate => v.pop().is_some(),
        };
    }
    if let Some(v) = payload.downcast_mut::<Vec<(u64, u64)>>() {
        return match mode {
            CorruptMode::BitFlip => match v.first_mut() {
                Some(x) => {
                    x.0 ^= 1;
                    true
                }
                None => false,
            },
            CorruptMode::Truncate => v.pop().is_some(),
        };
    }
    if let Some(vv) = payload.downcast_mut::<Vec<Vec<u64>>>() {
        if let Some(inner) = vv.iter_mut().find(|i| !i.is_empty()) {
            return corrupt_u64s(inner, mode);
        }
        return false;
    }
    if let Some(vv) = payload.downcast_mut::<Vec<Vec<(u64, u64)>>>() {
        if let Some(inner) = vv.iter_mut().find(|i| !i.is_empty()) {
            return match mode {
                CorruptMode::BitFlip => {
                    inner[0].0 ^= 1;
                    true
                }
                CorruptMode::Truncate => inner.pop().is_some(),
            };
        }
        return false;
    }
    false
}

/// [`corrupt_any`] that also hands back a pristine deep copy of the
/// payload when (and only when) the corruption was applied — the copy
/// the exchange layer retransmits after the checksum catches the
/// damage.
pub(crate) fn corrupt_any_preserving(
    payload: &mut (dyn Any + Send + Sync),
    mode: CorruptMode,
) -> (bool, Option<Box<dyn Any + Send + Sync>>) {
    let pristine = crate::frame::clone_any(payload);
    let applied = corrupt_any(payload, mode);
    (applied, if applied { pristine } else { None })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_respects_counts() {
        let spec = FaultSpec {
            seed: 7,
            panics: 2,
            stragglers: 1,
            corruptions: 3,
            straggler_secs: 0.25,
            horizon: 10,
        };
        let a = FaultPlan::generate(&spec, 8);
        let b = FaultPlan::generate(&spec, 8);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 6);
        assert!(a.events().iter().all(|e| e.rank < 8 && e.op_index < 10));
        let c = FaultPlan::generate(&FaultSpec { seed: 8, ..spec }, 8);
        assert_ne!(a.events(), c.events(), "seed must matter");
        assert!(FaultPlan::generate(&FaultSpec::NONE, 8).is_empty());
    }

    #[test]
    fn parse_accepts_all_verbs_and_rejects_garbage() {
        let p = FaultPlan::parse("panic@1:5; straggle@0:3:0.002 ;corrupt@2:4:bitflip").unwrap();
        assert_eq!(
            p.events(),
            &[
                FaultEvent {
                    rank: 1,
                    op_index: 5,
                    kind: FaultKind::Panic
                },
                FaultEvent {
                    rank: 0,
                    op_index: 3,
                    kind: FaultKind::Straggler { secs: 0.002 }
                },
                FaultEvent {
                    rank: 2,
                    op_index: 4,
                    kind: FaultKind::Corrupt {
                        mode: CorruptMode::BitFlip
                    }
                },
            ]
        );
        assert!(FaultPlan::parse("explode@1:2").is_err());
        assert!(FaultPlan::parse("panic@x:2").is_err());
        assert!(FaultPlan::parse("corrupt@1:2:sideways").is_err());
        assert!(FaultPlan::parse("panic@1:2:3").is_err(), "arity checked");
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn events_fire_exactly_once() {
        let p = FaultPlan::parse("panic@1:5").unwrap();
        assert_eq!(p.fire(0, 5), None);
        assert_eq!(p.fire(1, 4), None);
        assert_eq!(p.fire(1, 5), Some(FaultKind::Panic));
        assert_eq!(
            p.fire(1, 5),
            None,
            "transient: consumed events stay consumed"
        );
    }

    #[test]
    fn duplicate_specs_fire_once_each_in_listed_order() {
        let p = FaultPlan::parse("corrupt@0:3:bitflip; corrupt@0:3:truncate; corrupt@0:3:bitflip")
            .expect("duplicates are accepted, not rejected");
        assert_eq!(p.events().len(), 3);
        assert_eq!(
            p.fire(0, 3),
            Some(FaultKind::Corrupt {
                mode: CorruptMode::BitFlip
            })
        );
        assert_eq!(
            p.fire(0, 3),
            Some(FaultKind::Corrupt {
                mode: CorruptMode::Truncate
            }),
            "second duplicate fires second, in listed order"
        );
        assert_eq!(
            p.fire(0, 3),
            Some(FaultKind::Corrupt {
                mode: CorruptMode::BitFlip
            })
        );
        assert_eq!(p.fire(0, 3), None, "all duplicates consumed");
    }

    #[test]
    fn injected_events_fire_once_and_keep_framing_stable() {
        let p = FaultPlan::armed();
        assert!(!p.is_empty(), "armed plans keep framing on from birth");
        assert_eq!(p.fire(0, 0), None);
        p.inject([FaultEvent {
            rank: 1,
            op_index: 3,
            kind: FaultKind::Panic,
        }]);
        assert_eq!(p.injected_pending(), 1);
        assert_eq!(p.fire(1, 2), None);
        assert_eq!(p.fire(1, 3), Some(FaultKind::Panic));
        assert_eq!(p.fire(1, 3), None, "injected events are transient too");
        assert_eq!(p.injected_pending(), 0);
        assert_eq!(p.injected_ever(), 1);
        assert!(!p.is_empty(), "is_empty is monotone once armed/injected");
    }

    #[test]
    fn injection_on_an_unarmed_plan_flips_is_empty_once() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        p.inject([FaultEvent {
            rank: 0,
            op_index: 0,
            kind: FaultKind::Straggler { secs: 0.1 },
        }]);
        assert!(!p.is_empty());
        assert_eq!(p.fire(0, 0), Some(FaultKind::Straggler { secs: 0.1 }));
        assert!(!p.is_empty(), "consumption never re-empties the plan");
    }

    #[test]
    fn static_events_outrank_injected_duplicates() {
        let p = FaultPlan::parse("corrupt@0:3:truncate").unwrap();
        p.inject([FaultEvent {
            rank: 0,
            op_index: 3,
            kind: FaultKind::Corrupt {
                mode: CorruptMode::BitFlip,
            },
        }]);
        assert_eq!(
            p.fire(0, 3),
            Some(FaultKind::Corrupt {
                mode: CorruptMode::Truncate
            }),
            "planned events consume first"
        );
        assert_eq!(
            p.fire(0, 3),
            Some(FaultKind::Corrupt {
                mode: CorruptMode::BitFlip
            })
        );
        assert_eq!(p.fire(0, 3), None);
    }

    #[test]
    fn corrupt_preserving_returns_pristine_copy_only_when_applied() {
        let mut v = vec![8u64, 9];
        let (applied, pristine) = corrupt_any_preserving(&mut v, CorruptMode::BitFlip);
        assert!(applied);
        assert_eq!(v, vec![9, 9]);
        let pristine = pristine.expect("applied corruption keeps a pristine copy");
        assert_eq!(pristine.downcast_ref::<Vec<u64>>().unwrap(), &vec![8, 9]);

        let mut unit = ();
        let (applied, pristine) = corrupt_any_preserving(&mut unit, CorruptMode::BitFlip);
        assert!(!applied);
        assert!(pristine.is_none());
    }

    #[test]
    fn corrupt_any_handles_pair_payloads() {
        let mut pairs = vec![(8u64, 5u64), (2, 3)];
        assert!(corrupt_any(&mut pairs, CorruptMode::BitFlip));
        assert_eq!(pairs[0], (9, 5));
        assert!(corrupt_any(&mut pairs, CorruptMode::Truncate));
        assert_eq!(pairs.len(), 1);
        let mut nested = vec![vec![], vec![(4u64, 7u64)]];
        assert!(corrupt_any(&mut nested, CorruptMode::BitFlip));
        assert_eq!(nested[1][0], (5, 7));
    }

    #[test]
    fn corrupt_any_handles_known_types_and_skips_unknown() {
        let mut v = vec![8u64, 9];
        assert!(corrupt_any(&mut v, CorruptMode::BitFlip));
        assert_eq!(v, vec![9, 9]);
        assert!(corrupt_any(&mut v, CorruptMode::Truncate));
        assert_eq!(v, vec![9]);
        let mut vv = vec![vec![], vec![4u64]];
        assert!(corrupt_any(&mut vv, CorruptMode::BitFlip));
        assert_eq!(vv[1], vec![5]);
        let mut unit = ();
        assert!(!corrupt_any(&mut unit, CorruptMode::BitFlip));
        let mut empty: Vec<u64> = Vec::new();
        assert!(!corrupt_any(&mut empty, CorruptMode::Truncate));
    }
}
