//! Graph analytics beyond BFS: the §8 vertex-program framework.
//!
//! The paper closes by arguing its techniques generalize into a
//! full graph-processing system ("the next-generation ShenTu"). This
//! example runs the four shipped programs — BFS, single-source shortest
//! paths, connected components, and PageRank — over one 1.5D-partitioned
//! R-MAT graph and prints what each found.
//!
//! ```text
//! cargo run --release --example analytics_framework -- [scale] [ranks]
//! ```

use sunbfs::common::{MachineConfig, INVALID_VERTEX};
use sunbfs::framework::{run_program, Bfs, ConnectedComponents, PageRank, ShortestPaths};
use sunbfs::net::{Cluster, MeshShape};
use sunbfs::part::{build_1p5d, Thresholds};
use sunbfs::rmat::{generate_chunk, RmatParams};

fn arg(n: usize, default: u64) -> u64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = arg(1, 13) as u32;
    let ranks = arg(2, 16) as usize;
    let params = RmatParams::graph500(scale, 42);
    let n = params.num_vertices();
    let thresholds = Thresholds::new(256, 64);
    let cluster = Cluster::new(MeshShape::near_square(ranks), MachineConfig::new_sunway());
    println!(
        "analytics over one SCALE-{scale} graph ({} vertices, {} edges) on {ranks} ranks\n",
        n,
        params.num_edges()
    );

    // Root: first non-loop endpoint the generator emits.
    let root = sunbfs::driver::pick_roots(&params, 1).expect("connected root")[0];

    let results = cluster.run(|ctx| {
        let chunk = generate_chunk(&params, ctx.rank() as u64, ranks as u64);
        let part = build_1p5d(ctx, n, &chunk, thresholds);
        drop(chunk);

        let bfs = run_program(ctx, &part, &Bfs { root });
        let sssp = run_program(
            ctx,
            &part,
            &ShortestPaths {
                root,
                weight_seed: 7,
            },
        );
        let cc = run_program(ctx, &part, &ConnectedComponents);
        let pr = run_program(ctx, &part, &PageRank::new(n, 15));
        (bfs, sssp, cc, pr)
    });

    // ---- BFS ----
    let reached = results
        .iter()
        .flat_map(|(b, _, _, _)| &b.values)
        .filter(|v| v.parent != INVALID_VERTEX)
        .count();
    let rounds = results[0].0.stats.rounds.len();
    println!("BFS from root {root}:");
    println!("  reached {reached} vertices in {rounds} rounds");

    // ---- SSSP ----
    let dists: Vec<u64> = results
        .iter()
        .flat_map(|(_, s, _, _)| &s.values)
        .map(|v| v.dist)
        .collect();
    let max_dist = dists
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    println!("\nSSSP from root {root} (integer weights in [1, 2^20]):");
    println!(
        "  farthest reachable vertex at weighted distance {max_dist} ({} Bellman-Ford rounds)",
        results[0].1.stats.rounds.len()
    );

    // ---- connected components ----
    let labels: Vec<u64> = results
        .iter()
        .flat_map(|(_, _, c, _)| c.values.iter().copied())
        .collect();
    let mut uniq: Vec<u64> = labels.clone();
    uniq.sort_unstable();
    uniq.dedup();
    let giant = {
        let mut counts = std::collections::HashMap::new();
        for &l in &labels {
            *counts.entry(l).or_insert(0u64) += 1;
        }
        counts.values().max().copied().unwrap_or(0)
    };
    println!("\nconnected components:");
    println!(
        "  {} components; giant component holds {giant} of {n} vertices ({:.1}%)",
        uniq.len(),
        100.0 * giant as f64 / n as f64
    );

    // ---- PageRank ----
    let mut ranks_v: Vec<(f64, u64)> = results
        .iter()
        .flat_map(|(_, _, _, p)| &p.values)
        .enumerate()
        .map(|(v, r)| (r.rank, v as u64))
        .collect();
    ranks_v.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let total: f64 = ranks_v.iter().map(|(r, _)| r).sum();
    println!("\nPageRank (15 iterations, d=0.85):");
    println!("  rank mass accounted: {total:.4}");
    println!("  top 5 vertices:");
    for (r, v) in ranks_v.iter().take(5) {
        println!("    v{v:<8} rank {r:.6}");
    }
    println!("\n(the top-ranked vertices are the E-class hubs the 1.5D partitioning delegates)");
}
