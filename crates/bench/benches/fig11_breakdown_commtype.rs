//! **Figure 11** — time breakdown by communication type.
//!
//! Paper (§6.1.2): the same scaling runs re-bucketed by operation:
//! alltoallv, allgather, reduce-scatter, compute, and imbalance/latency.
//! Communication share grows with scale (alltoallv and reduce-scatter
//! dominate it), while the imbalance+latency share stays roughly
//! constant — the load-balance claim of the 1.5D partitioning.
//!
//! This harness prints the same stacked percentages from the
//! communication-type accounting built into the cluster runtime.

use sunbfs::driver::{run_benchmark, FaultSpec, RunConfig};
use sunbfs_bench::{group_by_commtype, print_percentages, sweep_thresholds, weak_scaling_sweep};
use sunbfs_common::MachineConfig;
use sunbfs_core::EngineConfig;

fn main() {
    let sweep = weak_scaling_sweep();
    let roots = 2;
    println!("=== Figure 11: time breakdown by communication type ===\n");

    let mut comm_shares = Vec::new();
    let mut imb_shares = Vec::new();
    for &(mesh, scale) in &sweep {
        let ranks = mesh.num_ranks();
        let cfg = RunConfig {
            scale,
            edge_factor: 16,
            mesh,
            thresholds: sweep_thresholds(scale),
            engine: EngineConfig::default(),
            machine: MachineConfig::new_sunway(),
            seed: 42,
            num_roots: roots,
            validate: false,
            faults: FaultSpec::NONE,
            max_root_retries: 2,
            serve_batch: false,
            serve_baseline: false,
            save_graph: None,
            load_graph: None,
        };
        let report = run_benchmark(&cfg).expect("benchmark must pass");
        let groups = group_by_commtype(&report.total_times());
        println!("--- {ranks} ranks, SCALE {scale} ---");
        print_percentages("per-comm-type share", &groups);
        println!();
        let total: f64 = groups.iter().map(|(_, s)| s).sum();
        let share = |k: &str| groups.iter().find(|(n, _)| n == k).unwrap().1 / total;
        comm_shares.push(share("alltoallv") + share("allgather") + share("reduce_scatter"));
        imb_shares.push(share("imbalance/latency"));
    }

    println!("shape checks:");
    println!(
        "  total collective share: {:?}",
        comm_shares
            .iter()
            .map(|s| format!("{:.0}%", s * 100.0))
            .collect::<Vec<_>>()
    );
    println!(
        "  imbalance/latency share: {:?}",
        imb_shares
            .iter()
            .map(|s| format!("{:.0}%", s * 100.0))
            .collect::<Vec<_>>()
    );
    assert!(
        comm_shares.last().unwrap() >= comm_shares.first().unwrap(),
        "communication share should grow (or hold) with scale, as in the paper"
    );
    println!("  (paper: communication grows with scale; imbalance+latency stays constant)");
}
