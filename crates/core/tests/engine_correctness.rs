//! End-to-end correctness of the distributed engine: for any mesh
//! shape, any thresholds (including both degenerate baselines), and any
//! engine configuration, the traversal must produce a valid Graph 500
//! parent tree whose levels match the sequential reference exactly.

use sunbfs_common::{Edge, MachineConfig, SplitMix64};
use sunbfs_core::validate::{
    component_edges, levels_from_parents, reference_bfs, validate_parents,
};
use sunbfs_core::{run_bfs, EngineConfig};
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, Thresholds};

/// Deterministic skewed multigraph (R-MAT-like hubs) with self loops
/// and duplicates sprinkled in.
fn skewed_graph(n: u64, m: usize, seed: u64) -> Vec<Edge> {
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = match rng.next_below(16) {
            0..=4 => rng.next_below(4),      // super-hubs
            5..=8 => 4 + rng.next_below(12), // medium hubs
            _ => rng.next_below(n),
        };
        let v = match rng.next_below(16) {
            0..=2 => rng.next_below(4),
            _ => rng.next_below(n),
        };
        edges.push(Edge::new(u, v));
    }
    // Some explicit duplicates and self loops.
    edges.push(Edge::new(1, 1));
    if m > 2 {
        let d = edges[0];
        edges.push(d);
    }
    edges
}

fn pick_root(n: u64, edges: &[Edge], salt: u64) -> u64 {
    // Any endpoint with degree > 0.
    edges[(salt as usize * 7919) % edges.len()].u.min(n - 1)
}

/// Run the full pipeline and cross-check against the reference.
fn check(
    rows: usize,
    cols: usize,
    n: u64,
    edges: &[Edge],
    th: Thresholds,
    cfg: &EngineConfig,
    root: u64,
) {
    let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
    let p = rows * cols;
    let outputs = cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % p == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        let part = build_1p5d(ctx, n, &chunk, th);
        run_bfs(ctx, &part, root, cfg).expect("BFS must terminate")
    });

    // Stitch the global parent array in rank order.
    let parents: Vec<u64> = outputs
        .iter()
        .flat_map(|o| o.parents.iter().copied())
        .collect();
    assert_eq!(parents.len() as u64, n);

    validate_parents(n, edges, root, &parents)
        .unwrap_or_else(|e| panic!("validation failed for mesh {rows}x{cols}, th {th:?}: {e:?}"));
    let levels = levels_from_parents(root, &parents).unwrap();
    let (_, ref_levels) = reference_bfs(n, edges, root);
    assert_eq!(
        levels, ref_levels,
        "level mismatch for mesh {rows}x{cols}, th {th:?}"
    );

    // Engine's TEPS edge count must match the specification count.
    let expect_m = component_edges(edges, &parents);
    let got_m = outputs[0].stats.traversed_edges;
    // The engine counts via degree sums over the multigraph (duplicates
    // included); the spec count dedups. Allow the multigraph inflation.
    assert!(
        got_m >= expect_m,
        "engine edge count {got_m} below component edges {expect_m}"
    );

    // Simulated time advanced and stats exist on every rank.
    for o in &outputs {
        assert!(o.stats.sim_seconds > 0.0);
        assert!(!o.stats.iterations.is_empty());
        assert_eq!(o.stats.visited_vertices, outputs[0].stats.visited_vertices);
    }
}

#[test]
fn full_pipeline_2x2_default_config() {
    let n = 256;
    let edges = skewed_graph(n, 3000, 1);
    let root = pick_root(n, &edges, 1);
    check(
        2,
        2,
        n,
        &edges,
        Thresholds::new(200, 40),
        &EngineConfig::default(),
        root,
    );
}

#[test]
fn full_pipeline_non_square_mesh() {
    let n = 300;
    let edges = skewed_graph(n, 2500, 2);
    let root = pick_root(n, &edges, 2);
    check(
        2,
        3,
        n,
        &edges,
        Thresholds::new(150, 30),
        &EngineConfig::default(),
        root,
    );
}

#[test]
fn full_pipeline_single_rank() {
    let n = 128;
    let edges = skewed_graph(n, 1000, 3);
    let root = pick_root(n, &edges, 3);
    check(
        1,
        1,
        n,
        &edges,
        Thresholds::new(100, 20),
        &EngineConfig::default(),
        root,
    );
}

#[test]
fn degenerate_1d_with_heavy_delegates() {
    // |H| = 0 on a single-row mesh: 1D partitioning with heavy delegates.
    let n = 200;
    let edges = skewed_graph(n, 2000, 4);
    let root = pick_root(n, &edges, 4);
    check(
        1,
        4,
        n,
        &edges,
        Thresholds::heavy_only(60),
        &EngineConfig::default(),
        root,
    );
}

#[test]
fn degenerate_2d_all_hubs() {
    // |L| = 0: pure 2D partitioning with vertex reordering.
    let n = 128;
    let edges = skewed_graph(n, 1200, 5);
    let root = pick_root(n, &edges, 5);
    check(
        2,
        2,
        n,
        &edges,
        Thresholds::all_hubs(1 << 20),
        &EngineConfig::default(),
        root,
    );
}

#[test]
fn vanilla_1d_no_hubs() {
    let n = 160;
    let edges = skewed_graph(n, 1500, 6);
    let root = pick_root(n, &edges, 6);
    check(
        2,
        2,
        n,
        &edges,
        Thresholds::none(),
        &EngineConfig::default(),
        root,
    );
}

#[test]
fn ablation_configs_agree_on_levels() {
    let n = 256;
    let edges = skewed_graph(n, 3000, 7);
    let root = pick_root(n, &edges, 7);
    for cfg in [
        EngineConfig::baseline(),
        EngineConfig::with_sub_iteration(),
        EngineConfig::default(),
    ] {
        check(2, 2, n, &edges, Thresholds::new(200, 40), &cfg, root);
    }
}

#[test]
fn hub_root_and_l_root() {
    let n = 200;
    let edges = skewed_graph(n, 2000, 8);
    // Vertex 0 is a super-hub by construction; n-1 is almost surely L.
    check(
        2,
        2,
        n,
        &edges,
        Thresholds::new(200, 40),
        &EngineConfig::default(),
        0,
    );
    let l_root = edges.iter().map(|e| e.u.max(e.v)).max().unwrap();
    check(
        2,
        2,
        n,
        &edges,
        Thresholds::new(200, 40),
        &EngineConfig::default(),
        l_root,
    );
}

#[test]
fn isolated_root_terminates_immediately() {
    // A root with no edges: traversal visits only the root.
    let n = 64;
    let mut edges = skewed_graph(n, 300, 9);
    edges.retain(|e| e.u != 63 && e.v != 63);
    let cluster = Cluster::new(MeshShape::new(2, 2), MachineConfig::new_sunway());
    let outputs = cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        let part = build_1p5d(ctx, n, &chunk, Thresholds::new(100, 20));
        run_bfs(ctx, &part, 63, &EngineConfig::default()).expect("BFS must terminate")
    });
    assert_eq!(outputs[0].stats.visited_vertices, 1);
    let parents: Vec<u64> = outputs
        .iter()
        .flat_map(|o| o.parents.iter().copied())
        .collect();
    assert_eq!(parents[63], 63);
}

#[test]
fn many_roots_many_seeds_sweep() {
    for seed in 10..14 {
        let n = 192;
        let edges = skewed_graph(n, 1800, seed);
        for salt in 0..3 {
            let root = pick_root(n, &edges, seed * 10 + salt);
            check(
                2,
                2,
                n,
                &edges,
                Thresholds::new(120, 24),
                &EngineConfig::default(),
                root,
            );
        }
    }
}

/// Run the engine on `edges` and return (engine degree-sum TEPS count,
/// spec-conformant `component_edges` count).
fn teps_counts(n: u64, edges: &[Edge], root: u64) -> (u64, u64) {
    let cluster = Cluster::new(MeshShape::new(2, 2), MachineConfig::new_sunway());
    let outputs = cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        let part = build_1p5d(ctx, n, &chunk, Thresholds::new(64, 16));
        run_bfs(ctx, &part, root, &EngineConfig::default()).expect("BFS must terminate")
    });
    let parents: Vec<u64> = outputs
        .iter()
        .flat_map(|o| o.parents.iter().copied())
        .collect();
    (
        outputs[0].stats.traversed_edges,
        component_edges(edges, &parents),
    )
}

#[test]
fn engine_teps_matches_spec_on_simple_graph_and_diverges_on_multigraph() {
    // A deduplicated simple graph (no self loops, no duplicates): the
    // engine's degree-sum estimate and the spec count agree exactly.
    let n = 96u64;
    let mut rng = SplitMix64::new(21);
    let mut simple: Vec<Edge> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    while simple.len() < 600 {
        let e = Edge::new(rng.next_below(n), rng.next_below(n)).canonical();
        if !e.is_self_loop() && seen.insert((e.u, e.v)) {
            simple.push(e);
        }
    }
    let (engine_m, spec_m) = teps_counts(n, &simple, simple[0].u);
    assert_eq!(
        engine_m, spec_m,
        "counts must agree on a deduplicated graph"
    );

    // Duplicate every edge: the spec count is unchanged (distinct edges
    // count once) while the degree-sum estimate doubles.
    let mut multi = simple.clone();
    multi.extend(simple.iter().copied());
    let (engine_m2, spec_m2) = teps_counts(n, &multi, simple[0].u);
    assert_eq!(spec_m2, spec_m, "spec count must dedup duplicate edges");
    assert_eq!(
        engine_m2,
        2 * engine_m,
        "degree-sum estimate counts each entry"
    );
    assert!(engine_m2 > spec_m2, "the two must diverge on a multigraph");
}

#[test]
fn small_spans_exercise_l_range_bucketing_end_to_end() {
    // With 64 vertices on a 2x2 mesh each rank owns a span of 16 —
    // far below the 32 fixed L-message ranges — and `Thresholds::none`
    // forces every edge through the L2L path and `apply_l_messages`.
    let n = 64u64;
    let edges = skewed_graph(n, 900, 31);
    let root = pick_root(n, &edges, 3);
    check(
        2,
        2,
        n,
        &edges,
        Thresholds::none(),
        &EngineConfig::default(),
        root,
    );
    // A 1x3 mesh gives a non-power-of-two span (22) as well.
    check(
        1,
        3,
        n,
        &edges,
        Thresholds::none(),
        &EngineConfig::default(),
        root,
    );
}
