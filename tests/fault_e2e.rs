//! End-to-end fault containment: an injected fault campaign must yield
//! a complete, schema-valid, explicitly-degraded benchmark report —
//! never an abort — and identical seeds must yield identical injection
//! schedules and byte-identical report JSON.

use std::time::Duration;

use proptest::prelude::*;
use sunbfs::driver::{run_benchmark, run_benchmark_with_sleeper, FaultSpec, RunConfig};
use sunbfs_net::FaultPlan;

/// A campaign guaranteed to hit root 0's first attempt: one panic at
/// collective index 0, which every run reaches immediately in the
/// partition build.
fn one_panic_at_start(seed: u64) -> FaultSpec {
    FaultSpec {
        seed,
        panics: 1,
        stragglers: 0,
        corruptions: 0,
        straggler_secs: 0.0,
        horizon: 1,
    }
}

#[test]
fn quarantined_root_still_yields_schema_valid_degraded_json() {
    let mut cfg = RunConfig::small_test(9, 4);
    cfg.faults = one_panic_at_start(5);
    cfg.max_root_retries = 0; // no retry budget: root 0 must quarantine
    let report = run_benchmark(&cfg).expect("degraded completion, not abort");

    assert!(report.faults.degraded());
    assert!(!report.validated, "degraded reports are never validated");
    assert_eq!(report.runs.len(), 2, "the two surviving roots complete");
    assert_eq!(report.faults.quarantined.len(), 1);
    assert_eq!(report.faults.injected.len(), 1);
    assert_eq!(report.faults.total_retries, 0);
    assert_eq!(report.faults.outcomes.len(), 3);
    assert!(report.faults.outcomes[0].quarantined);
    assert_eq!(report.faults.outcomes[0].attempts, 1);
    for run in &report.runs {
        assert!(run.gteps > 0.0, "survivors carry full statistics");
    }

    // The JSON report is complete and carries the fault section.
    let js = report.to_json().render();
    assert!(js.contains("\"schema_version\":10"), "got {js}");
    assert!(js.contains("\"degraded\":true"));
    assert!(js.contains("\"total_retries\":0"));
    assert!(js.contains("\"reason\":\"rank_failure\""));
    assert!(js.contains("\"kind\":\"panic\""));
    assert!(js.contains("\"harmonic_mean_gteps\":"));
    // The quarantined root appears in outcomes but not in `roots`.
    let quarantined_root = report.faults.quarantined[0].root;
    assert!(!report.runs.iter().any(|r| r.root == quarantined_root));
}

#[test]
fn retry_budget_turns_the_same_campaign_into_a_clean_report() {
    // Same single-shot fault, but with retries available: the fault is
    // transient (fires once per cluster lifetime), so the report ends
    // clean and validated with exactly one retry spent.
    let mut cfg = RunConfig::small_test(9, 4);
    cfg.faults = one_panic_at_start(5);
    cfg.max_root_retries = 2;
    let report = run_benchmark(&cfg).expect("retry absorbs the fault");

    assert!(!report.faults.degraded());
    assert!(report.validated);
    assert_eq!(report.runs.len(), 3);
    assert_eq!(report.faults.total_retries, 1);
    assert_eq!(report.faults.injected.len(), 1);
    assert_eq!(report.faults.outcomes[0].attempts, 2);
    let js = report.to_json().render();
    assert!(js.contains("\"degraded\":false"));
    assert!(js.contains("\"total_retries\":1"));
}

#[test]
fn applied_corruption_is_healed_by_retransmit_without_any_retry() {
    // Probe campaign seeds until the planted corruption lands on a
    // corruptible payload (a corruption aimed at e.g. a barrier is
    // logged but not applied). The first applied one must be healed at
    // the exchange layer: the run completes clean and validated, with
    // the retransmit — not a root retry — as the only trace.
    for seed in 0..64 {
        let mut cfg = RunConfig::small_test(8, 4);
        cfg.num_roots = 1;
        cfg.faults = FaultSpec {
            seed,
            panics: 0,
            stragglers: 0,
            corruptions: 1,
            straggler_secs: 0.0,
            horizon: 30,
        };
        let report = run_benchmark(&cfg).expect("corruption is healed, not fatal");
        if !report.faults.injected.iter().any(|f| f.applied) {
            continue;
        }
        assert!(report.validated);
        assert!(!report.faults.degraded());
        assert_eq!(
            report.faults.total_retries, 0,
            "healing happens below the retry layer"
        );
        assert!(
            report.recovery.retransmits() >= 1,
            "an applied corruption must force at least one retransmit"
        );
        let rec = &report.recovery.retransmit_log[0];
        assert_eq!(rec.attempt, 1, "one retransmit round heals a single hit");
        let js = report.to_json().render();
        assert!(js.contains("\"retransmits\":"), "got {js}");
        assert!(js.contains("\"checkpoints_taken\":"));
        return;
    }
    panic!("no probed campaign seed produced an applied corruption");
}

#[test]
fn retry_backoff_follows_the_exponential_schedule() {
    // Several panics stacked on the first collective force repeated
    // retries; the injectable sleeper observes the exact backoff
    // sequence, which must match the documented 2^attempt schedule
    // reconstructed from the per-root attempt counts.
    for seed in 0..32 {
        let mut cfg = RunConfig::small_test(8, 4);
        cfg.faults = FaultSpec {
            seed,
            panics: 4,
            stragglers: 0,
            corruptions: 0,
            straggler_secs: 0.0,
            horizon: 1,
        };
        cfg.max_root_retries = 4;
        let mut sleeps: Vec<Duration> = Vec::new();
        let report = run_benchmark_with_sleeper(&cfg, &mut |d| sleeps.push(d))
            .expect("retries absorb the campaign");
        if !report.faults.outcomes.iter().any(|o| o.attempts >= 3) {
            continue; // need a root that backed off at least twice
        }
        let expected: Vec<Duration> = report
            .faults
            .outcomes
            .iter()
            .flat_map(|o| (1..o.attempts).map(|a| Duration::from_millis(1u64 << a.min(6))))
            .collect();
        assert_eq!(sleeps, expected, "backoff schedule (seed {seed})");
        assert_eq!(sleeps.len() as u64, report.faults.total_retries);
        return;
    }
    panic!("no probed campaign seed produced a doubly-retried root");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Determinism: the same `FaultSpec` seed produces the identical
    /// injection schedule, and two full benchmark runs under that
    /// campaign render byte-identical (possibly degraded) JSON.
    #[test]
    fn identical_seed_gives_identical_schedule_and_report_json(
        seed in 0u64..1_000,
        panics in 0u32..3,
        stragglers in 0u32..2,
    ) {
        let spec = FaultSpec {
            seed,
            panics,
            stragglers,
            corruptions: 1,
            straggler_secs: 0.25,
            horizon: 40,
        };
        let a = FaultPlan::generate(&spec, 4);
        let b = FaultPlan::generate(&spec, 4);
        prop_assert_eq!(a.events(), b.events());

        let mut cfg = RunConfig::small_test(8, 4);
        cfg.faults = spec;
        cfg.max_root_retries = 1;
        let mut ra = run_benchmark(&cfg).expect("first run completes");
        let mut rb = run_benchmark(&cfg).expect("second run completes");
        prop_assert_eq!(
            ra.faults.injected.len(),
            rb.faults.injected.len()
        );
        // Everything but the host-measured `wall` section (schema v5)
        // must be byte-identical; wall-clock timings are the one part
        // of the report that legitimately varies between runs.
        ra.wall = Default::default();
        rb.wall = Default::default();
        prop_assert_eq!(ra.to_json().render(), rb.to_json().render());
    }
}
