//! Wide-word bitmap kernels.
//!
//! The hot engine scans walk `u64` word arrays one word at a time. This
//! module provides the chunked wide-word primitives they route through
//! instead: every loop is unrolled over **4-word blocks** (`u64x4` in
//! spirit — the unroll gives the autovectorizer straight-line SIMD
//! bodies without any platform intrinsics), with a scalar tail for the
//! ragged remainder. All primitives visit words/bits in strictly
//! ascending order, so routing a pooled scan through them keeps the
//! chunk-ordered merge — and therefore parents and depths — byte-for-
//! byte identical to the scalar loops they replace (the determinism
//! contract of `docs/PERF.md`).
//!
//! Callers hold plain `&[u64]` slices (both [`super::Bitmap`] storage
//! and the batch engine's raw per-root word arrays), so the primitives
//! take slices rather than bitmaps.

/// Words per unrolled block. Block-chunked loops must handle word
/// counts that are *not* multiples of this (the ragged tail).
pub const BLOCK_WORDS: usize = 4;

/// Population count of a word slice, unrolled over 4-word blocks.
pub fn count_ones(words: &[u64]) -> u64 {
    let mut chunks = words.chunks_exact(BLOCK_WORDS);
    let mut c0 = 0u64;
    let mut c1 = 0u64;
    let mut c2 = 0u64;
    let mut c3 = 0u64;
    for b in &mut chunks {
        c0 += b[0].count_ones() as u64;
        c1 += b[1].count_ones() as u64;
        c2 += b[2].count_ones() as u64;
        c3 += b[3].count_ones() as u64;
    }
    let mut total = c0 + c1 + c2 + c3;
    for &w in chunks.remainder() {
        total += w.count_ones() as u64;
    }
    total
}

/// Population count of `a & !b` over paired slices (`|a \ b|`),
/// unrolled over 4-word blocks.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn and_not_count(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len(), "word slice length mismatch");
    let mut ca = a.chunks_exact(BLOCK_WORDS);
    let mut cb = b.chunks_exact(BLOCK_WORDS);
    let mut c0 = 0u64;
    let mut c1 = 0u64;
    let mut c2 = 0u64;
    let mut c3 = 0u64;
    for (x, y) in (&mut ca).zip(&mut cb) {
        c0 += (x[0] & !y[0]).count_ones() as u64;
        c1 += (x[1] & !y[1]).count_ones() as u64;
        c2 += (x[2] & !y[2]).count_ones() as u64;
        c3 += (x[3] & !y[3]).count_ones() as u64;
    }
    let mut total = c0 + c1 + c2 + c3;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        total += (x & !y).count_ones() as u64;
    }
    total
}

/// `dst[i] |= src[i]` over paired slices, unrolled over 4-word blocks.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word slice length mismatch");
    let mut cd = dst.chunks_exact_mut(BLOCK_WORDS);
    let mut cs = src.chunks_exact(BLOCK_WORDS);
    for (d, s) in (&mut cd).zip(&mut cs) {
        d[0] |= s[0];
        d[1] |= s[1];
        d[2] |= s[2];
        d[3] |= s[3];
    }
    for (d, s) in cd.into_remainder().iter_mut().zip(cs.remainder()) {
        *d |= s;
    }
}

/// `dst[i] &= !src[i]` over paired slices, unrolled over 4-word blocks.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn and_not_assign(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "word slice length mismatch");
    let mut cd = dst.chunks_exact_mut(BLOCK_WORDS);
    let mut cs = src.chunks_exact(BLOCK_WORDS);
    for (d, s) in (&mut cd).zip(&mut cs) {
        d[0] &= !s[0];
        d[1] &= !s[1];
        d[2] &= !s[2];
        d[3] &= !s[3];
    }
    for (d, s) in cd.into_remainder().iter_mut().zip(cs.remainder()) {
        *d &= !s;
    }
}

/// Visit every **nonzero** word of `words[wstart..wend)` in ascending
/// index order: `f(word_index, word)`. All-zero 4-word blocks are
/// skipped with one OR-reduction — the sparse-frontier fast path of the
/// push scans.
///
/// Out-of-range or inverted windows clamp to empty, matching
/// [`super::Bitmap::iter_ones_words`].
pub fn for_each_nonzero_word(
    words: &[u64],
    wstart: usize,
    wend: usize,
    mut f: impl FnMut(usize, u64),
) {
    let wend = wend.min(words.len());
    let wstart = wstart.min(wend);
    let mut w = wstart;
    // Ragged head/tail run scalar; only full in-window blocks unroll.
    while w < wend {
        let rem = wend - w;
        if rem >= BLOCK_WORDS {
            let b = &words[w..w + BLOCK_WORDS];
            if b[0] | b[1] | b[2] | b[3] != 0 {
                for (k, &word) in b.iter().enumerate() {
                    if word != 0 {
                        f(w + k, word);
                    }
                }
            }
            w += BLOCK_WORDS;
        } else {
            for k in 0..rem {
                let word = words[w + k];
                if word != 0 {
                    f(w + k, word);
                }
            }
            w = wend;
        }
    }
}

/// Visit every set-bit index of `words[wstart..wend)` below `bits`, in
/// ascending order: the fused mask-and-advance iteration behind the
/// push scans. Equivalent to [`super::Bitmap::iter_ones_words`] but
/// block-skips zero regions and avoids iterator state.
pub fn for_each_one(words: &[u64], bits: u64, wstart: usize, wend: usize, mut f: impl FnMut(u64)) {
    for_each_nonzero_word(words, wstart, wend, |wi, mut word| {
        let base = wi as u64 * 64;
        while word != 0 {
            let idx = base + word.trailing_zeros() as u64;
            word &= word - 1;
            if idx < bits {
                f(idx);
            }
        }
    });
}

/// Fused discovery advance: `dst[i] |= a[i] & !b[i]` over paired
/// slices, unrolled over 4-word blocks — the `next |= update \ visited`
/// step of the hub sync, without materializing the difference.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn or_and_not_assign(dst: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(dst.len(), a.len(), "word slice length mismatch");
    assert_eq!(a.len(), b.len(), "word slice length mismatch");
    let mut cd = dst.chunks_exact_mut(BLOCK_WORDS);
    let mut ca = a.chunks_exact(BLOCK_WORDS);
    let mut cb = b.chunks_exact(BLOCK_WORDS);
    for ((d, x), y) in (&mut cd).zip(&mut ca).zip(&mut cb) {
        d[0] |= x[0] & !y[0];
        d[1] |= x[1] & !y[1];
        d[2] |= x[2] & !y[2];
        d[3] |= x[3] & !y[3];
    }
    for ((d, x), y) in cd
        .into_remainder()
        .iter_mut()
        .zip(ca.remainder())
        .zip(cb.remainder())
    {
        *d |= x & !y;
    }
}

/// Visit every **unset**-bit index of `words` within the item range
/// `[start, end)` (`end` clamped to `bits`), ascending — the pull-scan
/// complement of [`for_each_one`]. Words are inverted on the fly with
/// head/tail masks, so slack bits past `bits` and outside the range are
/// never reported.
pub fn for_each_zero(words: &[u64], bits: u64, start: u64, end: u64, mut f: impl FnMut(u64)) {
    let end = end.min(bits);
    if start >= end {
        return;
    }
    let ws = (start / 64) as usize;
    let we = ((end - 1) / 64) as usize;
    for (off, word) in words[ws..=we].iter().enumerate() {
        let wi = ws + off;
        let mut inv = !word;
        if wi == ws {
            inv &= u64::MAX << (start % 64);
        }
        if wi == we {
            let top = end - wi as u64 * 64;
            if top < 64 {
                inv &= (1u64 << top) - 1;
            }
        }
        while inv != 0 {
            let idx = wi as u64 * 64 + inv.trailing_zeros() as u64;
            inv &= inv - 1;
            f(idx);
        }
    }
}

/// Visit every index of `[start, end)` (`end` clamped to `bits`) where
/// **neither** `a` nor `b` has the bit set, ascending — the pull-scan
/// skip test `visited.get(i) || update.get(i)` fused into one inverted
/// word walk.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn for_each_unset_pair(
    a: &[u64],
    b: &[u64],
    bits: u64,
    start: u64,
    end: u64,
    mut f: impl FnMut(u64),
) {
    assert_eq!(a.len(), b.len(), "word slice length mismatch");
    let end = end.min(bits);
    if start >= end {
        return;
    }
    let ws = (start / 64) as usize;
    let we = ((end - 1) / 64) as usize;
    for wi in ws..=we {
        let mut inv = !(a[wi] | b[wi]);
        if wi == ws {
            inv &= u64::MAX << (start % 64);
        }
        if wi == we {
            let top = end - wi as u64 * 64;
            if top < 64 {
                inv &= (1u64 << top) - 1;
            }
        }
        while inv != 0 {
            let idx = wi as u64 * 64 + inv.trailing_zeros() as u64;
            inv &= inv - 1;
            f(idx);
        }
    }
}

/// Visit every index of `[start, end)` where `a[i] & !b[i]` is nonzero,
/// with that difference word: the batch engine's `new = mask & !seen`
/// discovery advance. 4-item blocks are skipped with one OR-reduction
/// when nothing is new.
///
/// # Panics
/// Panics when the slices differ in length.
pub fn for_each_and_not(
    a: &[u64],
    b: &[u64],
    start: usize,
    end: usize,
    mut f: impl FnMut(usize, u64),
) {
    assert_eq!(a.len(), b.len(), "word slice length mismatch");
    let end = end.min(a.len());
    let start = start.min(end);
    let mut i = start;
    while i < end {
        let rem = end - i;
        if rem >= BLOCK_WORDS {
            let n0 = a[i] & !b[i];
            let n1 = a[i + 1] & !b[i + 1];
            let n2 = a[i + 2] & !b[i + 2];
            let n3 = a[i + 3] & !b[i + 3];
            if n0 | n1 | n2 | n3 != 0 {
                if n0 != 0 {
                    f(i, n0);
                }
                if n1 != 0 {
                    f(i + 1, n1);
                }
                if n2 != 0 {
                    f(i + 2, n2);
                }
                if n3 != 0 {
                    f(i + 3, n3);
                }
            }
            i += BLOCK_WORDS;
        } else {
            for k in 0..rem {
                let n = a[i + k] & !b[i + k];
                if n != 0 {
                    f(i + k, n);
                }
            }
            i = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word soup with plenty of zero and all-ones blocks.
    fn soup(len: usize, seed: u64) -> Vec<u64> {
        let mut s = seed;
        (0..len)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                match s % 5 {
                    0 => 0,
                    1 => u64::MAX,
                    _ => s ^ (i as u64).rotate_left(17),
                }
            })
            .collect()
    }

    #[test]
    fn count_ones_matches_scalar_at_ragged_lengths() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 63, 64, 65, 257] {
            let w = soup(len, 42 + len as u64);
            let scalar: u64 = w.iter().map(|x| x.count_ones() as u64).sum();
            assert_eq!(count_ones(&w), scalar, "len={len}");
        }
    }

    #[test]
    fn and_not_count_matches_scalar_at_ragged_lengths() {
        for len in [0usize, 1, 3, 4, 6, 9, 64, 67] {
            let a = soup(len, 1);
            let b = soup(len, 2);
            let scalar: u64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x & !y).count_ones() as u64)
                .sum();
            assert_eq!(and_not_count(&a, &b), scalar, "len={len}");
        }
    }

    #[test]
    fn or_and_not_assign_match_scalar() {
        for len in [0usize, 1, 4, 5, 11, 64, 70] {
            let src = soup(len, 3);
            let base = soup(len, 4);
            let mut wide_or = base.clone();
            or_assign(&mut wide_or, &src);
            let scalar_or: Vec<u64> = base.iter().zip(&src).map(|(d, s)| d | s).collect();
            assert_eq!(wide_or, scalar_or, "or len={len}");

            let mut wide_an = base.clone();
            and_not_assign(&mut wide_an, &src);
            let scalar_an: Vec<u64> = base.iter().zip(&src).map(|(d, s)| d & !s).collect();
            assert_eq!(wide_an, scalar_an, "and_not len={len}");
        }
    }

    #[test]
    fn for_each_nonzero_word_visits_in_order_with_clamps() {
        let w = soup(37, 9);
        for (ws, we) in [
            (0usize, 37usize),
            (0, 5),
            (3, 37),
            (5, 5),
            (9, 3),
            (10, 999),
        ] {
            let mut got = Vec::new();
            for_each_nonzero_word(&w, ws, we, |i, word| got.push((i, word)));
            let expect: Vec<(usize, u64)> = (ws.min(we.min(w.len()))..we.min(w.len()))
                .filter(|&i| w[i] != 0)
                .map(|i| (i, w[i]))
                .collect();
            assert_eq!(got, expect, "window [{ws},{we})");
        }
    }

    #[test]
    fn for_each_one_matches_bitmap_iter_at_ragged_tails() {
        // Non-multiple-of-4 word counts AND a non-multiple-of-64 bit
        // length: the block path must clamp both tails.
        let mut b = super::super::Bitmap::new(987);
        for i in (0..987).step_by(13) {
            b.set(i);
        }
        b.words_mut()[15] |= u64::MAX << 27; // slack past len in the top word
        let last = b.num_words() - 1;
        b.words_mut()[last] = u64::MAX; // slack in the true top word
        let serial: Vec<u64> = b.iter_ones().collect();
        let mut got = Vec::new();
        for_each_one(b.words(), b.len(), 0, b.num_words(), |i| got.push(i));
        assert_eq!(got, serial);
        // Window tiling (any partition, concatenated) still matches.
        for window in [1usize, 3, 4, 5, 7] {
            let mut tiled = Vec::new();
            let mut w = 0;
            while w < b.num_words() {
                for_each_one(
                    b.words(),
                    b.len(),
                    w,
                    (w + window).min(b.num_words()),
                    |i| tiled.push(i),
                );
                w += window;
            }
            assert_eq!(tiled, serial, "window={window}");
        }
    }

    #[test]
    fn for_each_zero_is_the_complement() {
        let mut b = super::super::Bitmap::new(333);
        for i in (0..333).step_by(3) {
            b.set(i);
        }
        for (lo, hi) in [
            (0u64, 333u64),
            (0, 0),
            (64, 64),
            (17, 200),
            (63, 65),
            (300, 9999),
        ] {
            let mut got = Vec::new();
            for_each_zero(b.words(), b.len(), lo, hi, |i| got.push(i));
            let expect: Vec<u64> = (lo..hi.min(b.len())).filter(|&i| !b.get(i)).collect();
            assert_eq!(got, expect, "range [{lo},{hi})");
        }
    }

    #[test]
    fn or_and_not_assign_matches_scalar() {
        for len in [0usize, 1, 4, 6, 64, 71] {
            let a = soup(len, 31);
            let b = soup(len, 32);
            let base = soup(len, 33);
            let mut wide = base.clone();
            or_and_not_assign(&mut wide, &a, &b);
            let scalar: Vec<u64> = base
                .iter()
                .zip(a.iter().zip(&b))
                .map(|(d, (x, y))| d | (x & !y))
                .collect();
            assert_eq!(wide, scalar, "len={len}");
        }
    }

    #[test]
    fn for_each_unset_pair_matches_scalar_skip_test() {
        let mut a = super::super::Bitmap::new(250);
        let mut b = super::super::Bitmap::new(250);
        for i in (0..250).step_by(3) {
            a.set(i);
        }
        for i in (0..250).step_by(5) {
            b.set(i);
        }
        for (lo, hi) in [(0u64, 250u64), (7, 201), (63, 66), (128, 128), (240, 9999)] {
            let mut got = Vec::new();
            for_each_unset_pair(a.words(), b.words(), 250, lo, hi, |i| got.push(i));
            let expect: Vec<u64> = (lo..hi.min(250))
                .filter(|&i| !a.get(i) && !b.get(i))
                .collect();
            assert_eq!(got, expect, "range [{lo},{hi})");
        }
    }

    #[test]
    fn for_each_and_not_matches_scalar_difference() {
        for len in [0usize, 1, 3, 4, 5, 8, 13, 64, 66] {
            let a = soup(len, 21);
            let b = soup(len, 22);
            for (s, e) in [(0usize, len), (1, len.saturating_sub(1)), (2, 999), (5, 3)] {
                let mut got = Vec::new();
                for_each_and_not(&a, &b, s, e, |i, n| got.push((i, n)));
                let expect: Vec<(usize, u64)> = (s.min(e.min(len))..e.min(len))
                    .filter_map(|i| {
                        let n = a[i] & !b[i];
                        (n != 0).then_some((i, n))
                    })
                    .collect();
                assert_eq!(got, expect, "len={len} range [{s},{e})");
            }
        }
    }
}
