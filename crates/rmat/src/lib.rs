//! Graph 500 R-MAT (Kronecker) graph generator.
//!
//! The Graph 500 benchmark (§2.2 of the paper) runs BFS on a synthetic
//! small-world graph produced by the R-MAT recursive-matrix model
//! (Chakrabarti et al., 2004) with quadrant probabilities
//! `A = 0.57, B = C = 0.19, D = 0.05` and an edge factor of 16: a
//! SCALE-`s` graph has `2^s` vertices and `16 · 2^s` undirected edges.
//!
//! This crate provides:
//! * [`RmatParams`] — generator configuration (Graph 500 defaults),
//! * [`generate_edges`] / [`generate_chunk`] — deterministic, splittable
//!   edge generation (each simulated rank generates its own chunk, as on
//!   the real machine),
//! * [`degrees`] and [`degree_histogram`] — degree-distribution tooling
//!   used to reproduce the multi-peak distribution of Figure 2 and to
//!   choose the E/H thresholds of Figure 12.
//!
//! Vertex labels are scrambled with a bijective hash
//! ([`sunbfs_common::LabelScrambler`]) so that vertex id carries no
//! degree information, as the specification requires.

pub mod degree;
pub mod social;

pub use degree::{degree_frequencies, degree_histogram, degrees};
pub use social::{generate_social, SocialParams};

use sunbfs_common::{Edge, GlobalGraphHeader, LabelScrambler, SplitMix64};

/// Configuration of the R-MAT generator.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Graph 500 SCALE (`2^scale` vertices).
    pub scale: u32,
    /// Edges generated per vertex (Graph 500: 16).
    pub edge_factor: u32,
    /// Quadrant probability A (top-left).
    pub a: f64,
    /// Quadrant probability B (top-right).
    pub b: f64,
    /// Quadrant probability C (bottom-left).
    pub c: f64,
    /// Master seed; the whole graph is a pure function of `(params, seed)`.
    pub seed: u64,
    /// Whether to scramble vertex labels (spec: yes; tests sometimes
    /// disable it to make degree structure predictable).
    pub scramble: bool,
}

impl RmatParams {
    /// Graph 500 specification parameters at the given SCALE.
    pub fn graph500(scale: u32, seed: u64) -> Self {
        RmatParams {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
            scramble: true,
        }
    }

    /// Quadrant probability D, `1 - (A+B+C)`.
    #[inline]
    pub fn d(&self) -> f64 {
        1.0 - (self.a + self.b + self.c)
    }

    /// Graph header (vertex/edge counts).
    pub fn header(&self) -> GlobalGraphHeader {
        GlobalGraphHeader {
            scale: self.scale,
            edge_factor: self.edge_factor,
        }
    }

    /// Total number of edges this configuration generates.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.header().num_edges()
    }

    /// Total number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.header().num_vertices()
    }
}

/// Draw a single R-MAT edge by recursive quadrant descent.
#[inline]
fn rmat_edge(params: &RmatParams, rng: &mut SplitMix64) -> (u64, u64) {
    let mut u = 0u64;
    let mut v = 0u64;
    let ab = params.a + params.b;
    let abc = ab + params.c;
    for _ in 0..params.scale {
        u <<= 1;
        v <<= 1;
        let r = rng.next_f64();
        if r < params.a {
            // top-left: neither bit set
        } else if r < ab {
            v |= 1; // top-right: column bit
        } else if r < abc {
            u |= 1; // bottom-left: row bit
        } else {
            u |= 1;
            v |= 1; // bottom-right
        }
    }
    (u, v)
}

/// Generate the half-open edge range `[lo, hi)` of the graph's edge list.
///
/// Each edge index derives an independent RNG stream from the master
/// seed, so any partitioning of `[0, num_edges)` into chunks yields the
/// same global edge list. This mirrors distributed generation on the
/// real machine, where every node generates its slice of the Kronecker
/// edge list independently.
pub fn generate_range(params: &RmatParams, lo: u64, hi: u64) -> Vec<Edge> {
    assert!(hi <= params.num_edges(), "edge range beyond graph size");
    assert!(lo <= hi);
    let root = SplitMix64::new(params.seed ^ 0x6261_7463_6867_656e);
    let scrambler = LabelScrambler::new(params.scale.max(1), params.seed);
    let mut out = Vec::with_capacity((hi - lo) as usize);
    for i in lo..hi {
        let mut rng = root.split(i);
        let (mut u, mut v) = rmat_edge(params, &mut rng);
        if params.scramble {
            u = scrambler.scramble(u);
            v = scrambler.scramble(v);
        }
        out.push(Edge::new(u, v));
    }
    out
}

/// Generate the whole edge list (small scales / tests).
pub fn generate_edges(params: &RmatParams) -> Vec<Edge> {
    generate_range(params, 0, params.num_edges())
}

/// Generate chunk `chunk_id` of `num_chunks` (the slice a simulated rank
/// owns). Chunks partition the edge list evenly; the union over all
/// chunk ids equals [`generate_edges`].
pub fn generate_chunk(params: &RmatParams, chunk_id: u64, num_chunks: u64) -> Vec<Edge> {
    assert!(chunk_id < num_chunks);
    let m = params.num_edges();
    let lo = m * chunk_id / num_chunks;
    let hi = m * (chunk_id + 1) / num_chunks;
    generate_range(params, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_full_vs_chunked() {
        let p = RmatParams::graph500(8, 12345);
        let full = generate_edges(&p);
        assert_eq!(full.len() as u64, p.num_edges());
        let mut chunked = Vec::new();
        for c in 0..7 {
            chunked.extend(generate_chunk(&p, c, 7));
        }
        assert_eq!(full, chunked);
    }

    #[test]
    fn labels_in_range() {
        let p = RmatParams::graph500(10, 7);
        for e in generate_edges(&p) {
            assert!(e.u < p.num_vertices());
            assert!(e.v < p.num_vertices());
        }
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = generate_edges(&RmatParams::graph500(8, 1));
        let b = generate_edges(&RmatParams::graph500(8, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // R-MAT with Graph 500 parameters must produce a heavy tail:
        // max degree far above the mean (which is 2*edge_factor = 32).
        let p = RmatParams::graph500(12, 42);
        let deg = degree::degrees(p.num_vertices(), &generate_edges(&p));
        let max = *deg.iter().max().unwrap();
        assert!(max > 200, "max degree {max} not skewed enough for R-MAT");
        // ... and a sizable fraction of isolated vertices (R-MAT leaves
        // many labels untouched at edge factor 16).
        let isolated = deg.iter().filter(|&&d| d == 0).count();
        assert!(
            isolated > (p.num_vertices() / 20) as usize,
            "too few isolated vertices: {isolated}"
        );
    }

    #[test]
    fn scrambling_changes_labels_not_structure() {
        let mut p = RmatParams::graph500(8, 9);
        p.scramble = false;
        let plain = generate_edges(&p);
        p.scramble = true;
        let scrambled = generate_edges(&p);
        assert_ne!(plain, scrambled);
        // Scrambling is a relabeling: degree *multiset* is preserved.
        let mut d1 = degree::degrees(p.num_vertices(), &plain);
        let mut d2 = degree::degrees(p.num_vertices(), &scrambled);
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn unscrambled_rmat_biases_low_ids() {
        // With A=0.57 the mass concentrates toward low vertex ids before
        // scrambling — the defining R-MAT property.
        let mut p = RmatParams::graph500(10, 11);
        p.scramble = false;
        let deg = degree::degrees(p.num_vertices(), &generate_edges(&p));
        let n = deg.len();
        let low: u64 = deg[..n / 2].iter().map(|&d| d as u64).sum();
        let high: u64 = deg[n / 2..].iter().map(|&d| d as u64).sum();
        assert!(low > high * 2, "low-id half {low} vs high-id half {high}");
    }
}
