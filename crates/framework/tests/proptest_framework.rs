//! Property-based tests of the vertex-program framework: program
//! results must be invariant to the mesh shape and threshold setting
//! (those change *where* data lives, never *what* is computed), and
//! must match sequential oracles on arbitrary graphs.

use proptest::prelude::*;
use sunbfs_common::{Edge, MachineConfig, INVALID_VERTEX};
use sunbfs_framework::{edge_weight, run_program, Bfs, ConnectedComponents, ShortestPaths};
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, Thresholds};

fn run_over<P>(
    rows: usize,
    cols: usize,
    n: u64,
    edges: &[Edge],
    th: Thresholds,
    program: P,
) -> Vec<P::Value>
where
    P: sunbfs_framework::VertexProgram + Copy + Send,
{
    let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
    let p = rows * cols;
    let out = cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % p == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        let part = build_1p5d(ctx, n, &chunk, th);
        run_program(ctx, &part, &program)
    });
    out.into_iter().flat_map(|o| o.values).collect()
}

fn dijkstra(n: u64, edges: &[Edge], root: u64, seed: u64) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut adj = vec![Vec::new(); n as usize];
    for e in edges {
        if !e.is_self_loop() {
            adj[e.u as usize].push(e.v);
            adj[e.v as usize].push(e.u);
        }
    }
    let mut dist = vec![u64::MAX; n as usize];
    dist[root as usize] = 0;
    let mut heap = BinaryHeap::from([Reverse((0u64, root))]);
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &v in &adj[u as usize] {
            let nd = d + edge_weight(u, v, seed);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SSSP distances equal Dijkstra for any graph, mesh, thresholds.
    #[test]
    fn sssp_equals_dijkstra(
        rows in 1usize..3,
        cols in 1usize..3,
        n in 8u64..96,
        raw in prop::collection::vec((0u64..96, 0u64..96), 1..250),
        e_th in 2u32..50,
        seed in any::<u64>(),
        root_pick in 0usize..64,
    ) {
        let edges: Vec<Edge> = raw.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        let candidates: Vec<u64> = edges
            .iter()
            .filter(|e| !e.is_self_loop())
            .flat_map(|e| [e.u, e.v])
            .collect();
        prop_assume!(!candidates.is_empty());
        let root = candidates[root_pick % candidates.len()];
        let th = Thresholds::new(e_th, (e_th / 3).max(1));
        let values = run_over(rows, cols, n, &edges, th, ShortestPaths { root, weight_seed: seed });
        let expect = dijkstra(n, &edges, root, seed);
        let got: Vec<u64> = values.iter().map(|v| v.dist).collect();
        prop_assert_eq!(got, expect);
    }

    /// Component labels are mesh- and threshold-invariant and constant
    /// within (and distinct across) components.
    #[test]
    fn cc_labels_are_canonical(
        n in 8u64..96,
        raw in prop::collection::vec((0u64..96, 0u64..96), 0..200),
    ) {
        let edges: Vec<Edge> = raw.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        let a = run_over(1, 1, n, &edges, Thresholds::none(), ConnectedComponents);
        let b = run_over(2, 2, n, &edges, Thresholds::new(20, 4), ConnectedComponents);
        prop_assert_eq!(&a, &b, "labels depend on the partitioning");
        // Labels must be idempotent under edge closure: endpoints agree.
        for e in &edges {
            prop_assert_eq!(a[e.u as usize], a[e.v as usize]);
        }
        // Each label is the minimum of its member set.
        for (v, &l) in a.iter().enumerate() {
            prop_assert!(l <= v as u64);
            prop_assert_eq!(a[l as usize], l, "label {} is not a fixed point", l);
        }
    }

    /// Framework BFS reaches exactly the reference set, and its parent
    /// forest is valid, on arbitrary graphs.
    #[test]
    fn framework_bfs_valid(
        n in 8u64..80,
        raw in prop::collection::vec((0u64..80, 0u64..80), 1..200),
        root_pick in 0usize..32,
    ) {
        let edges: Vec<Edge> = raw.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        let candidates: Vec<u64> = edges
            .iter()
            .filter(|e| !e.is_self_loop())
            .flat_map(|e| [e.u, e.v])
            .collect();
        prop_assume!(!candidates.is_empty());
        let root = candidates[root_pick % candidates.len()];
        let values = run_over(2, 2, n, &edges, Thresholds::new(16, 4), Bfs { root });
        let parents: Vec<u64> = values.iter().map(|v| v.parent).collect();
        prop_assert!(sunbfs_core::validate_parents(n, &edges, root, &parents).is_ok());
        let (ref_parents, _) = sunbfs_core::reference_bfs(n, &edges, root);
        for v in 0..n as usize {
            prop_assert_eq!(
                parents[v] == INVALID_VERTEX,
                ref_parents[v] == INVALID_VERTEX,
                "reachability mismatch at {}", v
            );
        }
    }
}
