//! Property-based tests of the store codec: any *real* partition the
//! 1.5D builder produces must round-trip byte-identically through the
//! paged format, and any single flipped byte must yield a typed
//! [`StoreError`] — never a silently wrong graph.

use std::io::Cursor;

use proptest::prelude::*;
use sunbfs_common::{Edge, MachineConfig};
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, RankPartition, Thresholds};
use sunbfs_store::{encode_store, read_store, StoreError, StoreHeader, PAGE_PAYLOAD, PAGE_SIZE};

/// Build a real multi-rank partition from a random edge list, the same
/// way the serve session does (each rank gets a strided chunk).
fn build(rows: usize, cols: usize, n: u64, edges: &[Edge], th: Thresholds) -> Vec<RankPartition> {
    let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
    let p = rows * cols;
    cluster.run(|ctx| {
        let chunk: Vec<Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % p == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        build_1p5d(ctx, n, &chunk, th)
    })
}

fn header_for(scale: u32, rows: usize, cols: usize, th: Thresholds, seed: u64) -> StoreHeader {
    StoreHeader {
        scale: u64::from(scale),
        edge_factor: 16,
        mesh_rows: rows as u64,
        mesh_cols: cols as u64,
        e_threshold: u64::from(th.e),
        h_threshold: u64::from(th.h),
        seed,
        num_ranks: (rows * cols) as u64,
        epoch: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Round-trip oracle: decode(encode(parts)) re-encodes to the very
    /// same bytes, for arbitrary graphs, meshes, and thresholds.
    #[test]
    fn codec_round_trips_real_partitions_byte_identically(
        rows in 1usize..3,
        cols in 1usize..4,
        scale in 5u32..8,
        raw_edges in prop::collection::vec((0u64..256, 0u64..256), 1..500),
        e_th in 2u32..80,
        h_div in 1u32..8,
        seed in 0u64..1000,
    ) {
        let n = 1u64 << scale;
        let edges: Vec<Edge> =
            raw_edges.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        let th = Thresholds::new(e_th, (e_th / h_div).max(1));
        let parts = build(rows, cols, n, &edges, th);
        let header = header_for(scale, rows, cols, th, seed);

        let bytes = encode_store(&header, &parts);
        prop_assert_eq!(bytes.len() % PAGE_SIZE, 0, "whole pages only");
        let (got_header, got_parts, info) = match read_store(&mut Cursor::new(&bytes)) {
            Ok(out) => out,
            Err(e) => panic!("clean decode refused: {e}"),
        };
        prop_assert_eq!(got_header, header.clone());
        prop_assert_eq!(info.file_bytes, bytes.len() as u64);
        prop_assert_eq!(encode_store(&header, &got_parts), bytes);
    }

    /// Damage model: flip one random byte anywhere in the file — the
    /// decoder must refuse with a typed error, never return Ok.
    #[test]
    fn any_single_flipped_byte_is_refused(
        raw_edges in prop::collection::vec((0u64..128, 0u64..128), 50..300),
        victim in 0usize..usize::MAX,
        flip in 1u32..256,
    ) {
        let n = 128;
        let edges: Vec<Edge> =
            raw_edges.iter().map(|&(u, v)| Edge::new(u % n, v % n)).collect();
        let th = Thresholds::new(16, 4);
        let parts = build(1, 2, n, &edges, th);
        let header = header_for(7, 1, 2, th, 42);
        let mut bytes = encode_store(&header, &parts);
        let victim = victim % bytes.len();
        bytes[victim] ^= flip as u8;
        match read_store(&mut Cursor::new(&bytes)) {
            Ok(_) => panic!("flipped byte {victim} decoded successfully"),
            Err(e) => {
                // Every refusal is one of the typed variants; rendering
                // it must not panic.
                let _ = e.to_string();
            }
        }
    }
}

/// Deterministic sweep: flip the first and last payload byte plus one
/// seal byte of *every* page. Each flip must produce a typed refusal —
/// a page-seal hit reports the damaged page number.
#[test]
fn corruption_sweep_at_every_page_boundary() {
    let n = 256u64;
    let edges: Vec<Edge> = (0..n).map(|i| Edge::new(i, (i * 7 + 3) % n)).collect();
    let th = Thresholds::new(8, 2);
    let parts = build(2, 2, n, &edges, th);
    let header = header_for(8, 2, 2, th, 7);
    let bytes = encode_store(&header, &parts);
    let pages = bytes.len() / PAGE_SIZE;
    assert!(pages >= 2, "sweep needs a multi-page file, got {pages}");

    for page in 0..pages {
        let base = page * PAGE_SIZE;
        for offset in [0, PAGE_PAYLOAD - 1, PAGE_PAYLOAD] {
            let mut bad = bytes.clone();
            bad[base + offset] ^= 0x01;
            let err = match read_store(&mut Cursor::new(&bad)) {
                Ok(_) => panic!("page {page} byte {offset}: corrupt file decoded"),
                Err(e) => e,
            };
            match err {
                StoreError::PageChecksum { page: reported } => {
                    assert_eq!(
                        reported, page as u64,
                        "seal failure must name the damaged page"
                    );
                }
                // Page-0 fixed-word damage can surface as a structural
                // refusal before any seal check; all are typed.
                StoreError::BadMagic
                | StoreError::BadVersion { .. }
                | StoreError::Truncated
                | StoreError::Corrupt { .. } => {}
                other => panic!("page {page} byte {offset}: unexpected error {other}"),
            }
        }
    }
}
