//! End-to-end Graph 500 benchmark driver.
//!
//! Reproduces the paper's measurement procedure (§6.1): generate an
//! R-MAT graph at a given SCALE, build the 1.5D partition on a mesh of
//! simulated ranks, traverse from a set of random roots ("64 random
//! roots" at full scale; fewer at laptop scale), validate every parent
//! tree against the specification, and report TEPS statistics with the
//! harmonic mean the benchmark mandates.

use std::fmt;
use std::time::{Duration, Instant};

use sunbfs_common::{pool, Edge, MachineConfig, TimeAccumulator};
use sunbfs_core::validate::{self, ValidationError};
use sunbfs_core::{
    run_bfs_recoverable, BfsOutput, CheckpointStore, EngineConfig, EngineError, IterationStats,
};
use sunbfs_net::{
    Cluster, CommStats, FaultPlan, FaultRecord, MeshShape, RankFailure, RetransmitRecord,
};
use sunbfs_part::{build_1p5d, ComponentStats, Thresholds};
use sunbfs_rmat::RmatParams;
use sunbfs_serve::{
    BfsService, GraphSession, QueryStatus, ServeConfig, ServeReport, SessionConfig, StoreActivity,
};

/// Everything one benchmark run needs.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Graph 500 SCALE (`2^scale` vertices, `16 · 2^scale` edges).
    pub scale: u32,
    /// Edges per vertex (spec: 16).
    pub edge_factor: u32,
    /// Mesh of simulated ranks (rows map to supernodes).
    pub mesh: MeshShape,
    /// E/H degree thresholds.
    pub thresholds: Thresholds,
    /// Engine technique toggles.
    pub engine: EngineConfig,
    /// Machine constants.
    pub machine: MachineConfig,
    /// Generator seed.
    pub seed: u64,
    /// Number of BFS roots to run.
    pub num_roots: usize,
    /// Validate every traversal against the spec (needs the full edge
    /// list on the driver; keep SCALE modest when enabled).
    pub validate: bool,
    /// Deterministic fault-injection campaign (seeded; `FaultSpec::NONE`
    /// disables injection). Overridable at run time via the
    /// `SUNBFS_FAULT_PLAN` environment variable.
    pub faults: FaultSpec,
    /// How many times a root whose SPMD phase lost a rank is retried
    /// (with backoff) before it is quarantined.
    pub max_root_retries: u32,
    /// Route the benchmark's roots through the serve layer's
    /// bit-parallel multi-source batch path (one resident partition,
    /// up to 64 roots per traversal) instead of the per-root loop.
    pub serve_batch: bool,
    /// With `serve_batch`, also measure the sequential single-source
    /// baseline over the same roots and record the comparison in the
    /// report's `serve` section.
    pub serve_baseline: bool,
    /// Write the built partition to this persistent-store path after
    /// the session load (routes the run through the serve session even
    /// without `serve_batch`).
    pub save_graph: Option<String>,
    /// Open the partition from this persistent-store path instead of
    /// rebuilding (building and saving it first when the file is
    /// missing — [`GraphSession::open_or_build`] semantics).
    pub load_graph: Option<String>,
}

impl RunConfig {
    /// Builder seeded with the defaults every call site shares
    /// (Graph 500 edge factor, Sunway machine constants, seed 42, …) so
    /// call sites only state what they change.
    pub fn builder() -> RunConfigBuilder {
        RunConfigBuilder::default()
    }

    /// A sensible laptop-scale configuration.
    pub fn small_test(scale: u32, ranks: usize) -> Self {
        RunConfig::builder()
            .scale(scale)
            .ranks(ranks)
            .num_roots(3)
            .validate(true)
            .build()
    }

    fn rmat(&self) -> RmatParams {
        let mut p = RmatParams::graph500(self.scale, self.seed);
        p.edge_factor = self.edge_factor;
        p
    }
}

/// Builder for [`RunConfig`] with every field defaulted, so adding a
/// knob doesn't fan out to every literal construction site.
#[derive(Clone, Debug)]
pub struct RunConfigBuilder {
    config: RunConfig,
}

impl Default for RunConfigBuilder {
    fn default() -> Self {
        RunConfigBuilder {
            config: RunConfig {
                scale: 9,
                edge_factor: 16,
                mesh: MeshShape::near_square(4),
                thresholds: Thresholds::new(256, 64),
                engine: EngineConfig::default(),
                machine: MachineConfig::new_sunway(),
                seed: 42,
                num_roots: 3,
                validate: false,
                faults: FaultSpec::NONE,
                max_root_retries: 2,
                serve_batch: false,
                serve_baseline: false,
                save_graph: None,
                load_graph: None,
            },
        }
    }
}

impl RunConfigBuilder {
    /// Graph 500 SCALE.
    pub fn scale(mut self, scale: u32) -> Self {
        self.config.scale = scale;
        self
    }

    /// Edges per vertex.
    pub fn edge_factor(mut self, edge_factor: u32) -> Self {
        self.config.edge_factor = edge_factor;
        self
    }

    /// Mesh from a rank count (near-square factorization).
    pub fn ranks(mut self, ranks: usize) -> Self {
        self.config.mesh = MeshShape::near_square(ranks);
        self
    }

    /// Explicit mesh shape.
    pub fn mesh(mut self, mesh: MeshShape) -> Self {
        self.config.mesh = mesh;
        self
    }

    /// E/H degree thresholds.
    pub fn thresholds(mut self, thresholds: Thresholds) -> Self {
        self.config.thresholds = thresholds;
        self
    }

    /// Engine technique toggles.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self
    }

    /// Machine constants.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.config.machine = machine;
        self
    }

    /// Generator seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Number of BFS roots.
    pub fn num_roots(mut self, num_roots: usize) -> Self {
        self.config.num_roots = num_roots;
        self
    }

    /// Validate every traversal.
    pub fn validate(mut self, validate: bool) -> Self {
        self.config.validate = validate;
        self
    }

    /// Fault-injection campaign.
    pub fn faults(mut self, faults: FaultSpec) -> Self {
        self.config.faults = faults;
        self
    }

    /// Per-root retry budget.
    pub fn max_root_retries(mut self, max_root_retries: u32) -> Self {
        self.config.max_root_retries = max_root_retries;
        self
    }

    /// Route roots through the serve layer's batch path.
    pub fn serve_batch(mut self, serve_batch: bool) -> Self {
        self.config.serve_batch = serve_batch;
        self
    }

    /// Also measure the sequential baseline on the serve path.
    pub fn serve_baseline(mut self, serve_baseline: bool) -> Self {
        self.config.serve_baseline = serve_baseline;
        self
    }

    /// Save the built partition to a persistent-store file.
    pub fn save_graph(mut self, path: &str) -> Self {
        self.config.save_graph = Some(path.to_string());
        self
    }

    /// Open (or build-and-save) the partition from a store file.
    pub fn load_graph(mut self, path: &str) -> Self {
        self.config.load_graph = Some(path.to_string());
        self
    }

    /// Finish.
    pub fn build(self) -> RunConfig {
        self.config
    }
}

/// A traversal or validation failure surfaced by [`run_benchmark`] as a
/// diagnosable error instead of a rank-local abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// The BFS engine itself failed (e.g. non-termination on a broken
    /// partition) — replicated across ranks, so the whole SPMD phase
    /// returns it coherently.
    Engine(EngineError),
    /// A parent tree failed Graph 500 validation.
    Validation {
        /// The root whose traversal failed validation.
        root: u64,
        /// The specification rule that was violated.
        error: ValidationError,
    },
    /// The generator probe found no vertex with nonzero degree to use
    /// as a BFS root (degenerate graph or probe window).
    NoConnectedRoot,
    /// The `SUNBFS_FAULT_PLAN` environment variable did not parse.
    InvalidFaultPlan(String),
    /// The serve path could not build its resident graph session
    /// (every load attempt lost a rank).
    SessionLoad(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Engine(e) => write!(f, "engine failure: {e}"),
            DriverError::Validation { root, error } => {
                write!(f, "Graph 500 validation failed for root {root}: {error:?}")
            }
            DriverError::NoConnectedRoot => {
                write!(
                    f,
                    "could not find any connected root in the generator probe"
                )
            }
            DriverError::InvalidFaultPlan(e) => {
                write!(f, "invalid SUNBFS_FAULT_PLAN: {e}")
            }
            DriverError::SessionLoad(e) => {
                write!(f, "serve session load failed: {e}")
            }
        }
    }
}

impl std::error::Error for DriverError {}

impl From<EngineError> for DriverError {
    fn from(e: EngineError) -> Self {
        DriverError::Engine(e)
    }
}

/// Why a root was dropped from the TEPS statistics instead of aborting
/// the whole benchmark.
#[derive(Clone, Debug)]
pub enum QuarantineReason {
    /// The engine returned a (replicated) error for this root.
    Engine(EngineError),
    /// The parent tree failed Graph 500 validation.
    Validation(ValidationError),
    /// The SPMD phase kept losing ranks; every retry was consumed.
    RankFailure {
        /// Total attempts made (initial run + retries).
        attempts: u32,
        /// The rank failures observed on the final attempt.
        failures: Vec<RankFailure>,
    },
    /// The serve layer's batch/fallback pipeline quarantined the query
    /// (its own label and detail carried through).
    Serve(sunbfs_serve::Quarantine),
}

impl QuarantineReason {
    /// Stable label used in messages and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            QuarantineReason::Engine(_) => "engine",
            QuarantineReason::Validation(_) => "validation",
            QuarantineReason::RankFailure { .. } => "rank_failure",
            QuarantineReason::Serve(q) => q.label,
        }
    }

    /// Human-readable detail string for logs and JSON.
    pub fn detail(&self) -> String {
        match self {
            QuarantineReason::Engine(e) => e.to_string(),
            QuarantineReason::Validation(e) => format!("{e:?}"),
            QuarantineReason::RankFailure { attempts, failures } => {
                let named: Vec<String> = failures
                    .iter()
                    .filter(|f| f.is_root_cause())
                    .map(|f| f.to_string())
                    .collect();
                format!("{} attempts exhausted: {}", attempts, named.join("; "))
            }
            QuarantineReason::Serve(q) => q.detail.clone(),
        }
    }
}

/// A root excluded from the report's TEPS statistics, with its reason.
#[derive(Clone, Debug)]
pub struct QuarantinedRoot {
    /// The quarantined root vertex.
    pub root: u64,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
}

/// Per-root bookkeeping of the retry loop, in root order.
#[derive(Clone, Debug)]
pub struct RootOutcome {
    /// The root vertex.
    pub root: u64,
    /// SPMD attempts spent on this root (1 = clean first run).
    pub attempts: u32,
    /// True when the root ended up quarantined.
    pub quarantined: bool,
    /// BFS iterations the final attempt resumed from a checkpoint
    /// instead of re-running (0 = the root restarted from scratch, or
    /// never needed a retry).
    pub iterations_salvaged: u32,
}

/// Self-healing observability attached to every [`BenchmarkReport`]:
/// what the exchange layer retransmitted and what the checkpoint layer
/// salvaged.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Every payload retransmission the exchange layer performed,
    /// sorted by (op index, sender, attempt).
    pub retransmit_log: Vec<RetransmitRecord>,
    /// Iteration checkpoints taken across all roots and attempts.
    pub checkpoints_taken: u64,
    /// BFS iterations recovered from checkpoints instead of re-run,
    /// summed over roots.
    pub iterations_salvaged: u64,
}

impl RecoveryReport {
    /// Number of healed (retransmitted) exchange deposits.
    pub fn retransmits(&self) -> u64 {
        self.retransmit_log.len() as u64
    }
}

/// Fault-campaign observability attached to every [`BenchmarkReport`].
#[derive(Clone, Debug, Default)]
pub struct FaultReport {
    /// Every fault the plan actually fired, with simulated timestamps,
    /// sorted by (rank, op index).
    pub injected: Vec<FaultRecord>,
    /// Attempt counts per root, in root order.
    pub outcomes: Vec<RootOutcome>,
    /// Roots excluded from the statistics.
    pub quarantined: Vec<QuarantinedRoot>,
    /// Total SPMD retries across all roots.
    pub total_retries: u64,
}

impl FaultReport {
    /// True when at least one root had to be quarantined — the report
    /// is complete but its statistics cover a subset of the roots.
    pub fn degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }
}

/// Results of one root's traversal, aggregated over ranks.
#[derive(Clone, Debug)]
pub struct RootRun {
    /// The root vertex.
    pub root: u64,
    /// Simulated traversal seconds (max over ranks — they finish
    /// together at the final collective).
    pub sim_seconds: f64,
    /// Graph 500 `m` for this root: the spec-conformant
    /// [`validate::component_edges`] count when validation ran,
    /// otherwise the engine's degree-sum estimate.
    pub traversed_edges: u64,
    /// The engine's own degree-sum estimate of `m`. Counts duplicate
    /// generator edges per entry, so on multigraphs it exceeds the
    /// deduplicated spec count in `traversed_edges`.
    pub engine_traversed_edges: u64,
    /// Vertices reached.
    pub visited_vertices: u64,
    /// Giga-TEPS on the simulated machine (from `traversed_edges`).
    pub gteps: f64,
    /// Iteration series (identical replicated counters from rank 0).
    pub iterations: Vec<IterationStats>,
    /// Per-category simulated time summed over ranks (for breakdowns).
    pub times: TimeAccumulator,
    /// Collective call counts and byte volumes summed over ranks.
    pub comm: CommStats,
}

/// Host wall-clock accounting of one benchmark run — real elapsed time
/// on the machine running the simulation, as opposed to the simulated
/// `SimTime` every other number is measured in. This is the worker-pool
/// scaling surface: `SUNBFS_WORKERS` cannot change any simulated
/// metric (determinism contract), so its win shows up here.
#[derive(Clone, Copy, Debug, Default)]
pub struct WallClockReport {
    /// Worker-pool size the run executed with (`SUNBFS_WORKERS`).
    pub workers: u64,
    /// Hardware threads the host reported
    /// ([`std::thread::available_parallelism`]); scaling beyond this is
    /// not physically possible.
    pub available_parallelism: u64,
    /// Wall-clock seconds of the whole benchmark (generation,
    /// partitioning, traversals, validation, reporting).
    pub total_seconds: f64,
    /// Wall-clock seconds inside the SPMD phases (partition build +
    /// BFS traversals) — the part the worker pool accelerates.
    pub bfs_seconds: f64,
    /// Traversed edges summed over surviving roots (numerator of
    /// `edges_per_second`).
    pub traversed_edges: u64,
    /// Real traversed-edges-per-second over `bfs_seconds` — the
    /// wall-clock throughput `scripts/bench_trajectory.sh` tracks.
    pub edges_per_second: f64,
}

impl WallClockReport {
    fn new(total_seconds: f64, bfs_seconds: f64, runs: &[RootRun]) -> Self {
        let traversed_edges: u64 = runs.iter().map(|r| r.traversed_edges).sum();
        WallClockReport {
            workers: pool::workers() as u64,
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
            total_seconds,
            bfs_seconds,
            traversed_edges,
            edges_per_second: if bfs_seconds > 0.0 {
                traversed_edges as f64 / bfs_seconds
            } else {
                0.0
            },
        }
    }
}

/// A full benchmark report.
#[derive(Clone, Debug)]
pub struct BenchmarkReport {
    /// The configuration that produced it.
    pub config: RunConfig,
    /// Per-rank component sizes (Figure 13's raw data).
    pub partition_stats: Vec<ComponentStats>,
    /// One entry per root that completed (quarantined roots excluded).
    pub runs: Vec<RootRun>,
    /// True when validation ran and every root passed (a degraded
    /// report is never `validated`).
    pub validated: bool,
    /// Fault-injection and retry/quarantine bookkeeping.
    pub faults: FaultReport,
    /// Retransmit and checkpoint/resume bookkeeping.
    pub recovery: RecoveryReport,
    /// Serve-layer observability when the roots went through the batch
    /// path (`None` on the classic per-root driver loop).
    pub serve: Option<ServeReport>,
    /// Persistent-store activity when the run saved or opened a graph
    /// file (`None` when no store path was involved).
    pub store: Option<StoreActivity>,
    /// Host wall-clock accounting (real time, not simulated time).
    pub wall: WallClockReport,
}

impl BenchmarkReport {
    /// Arithmetic mean GTEPS over roots.
    pub fn mean_gteps(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.gteps).sum::<f64>() / self.runs.len() as f64
    }

    /// Harmonic mean GTEPS — the Graph 500 headline statistic.
    pub fn harmonic_mean_gteps(&self) -> f64 {
        if self.runs.is_empty() || self.runs.iter().any(|r| r.gteps <= 0.0) {
            return 0.0;
        }
        self.runs.len() as f64 / self.runs.iter().map(|r| 1.0 / r.gteps).sum::<f64>()
    }

    /// Sum the per-category times of all runs into one accumulator.
    pub fn total_times(&self) -> TimeAccumulator {
        let mut acc = TimeAccumulator::new();
        for r in &self.runs {
            acc.merge(&r.times);
        }
        acc
    }
}

/// Choose `k` distinct roots with nonzero degree, deterministically
/// from the generator's first edge chunk.
///
/// # Errors
/// Returns [`DriverError::NoConnectedRoot`] when the probe window
/// contains only self-loops (degenerate graph).
pub fn pick_roots(params: &RmatParams, k: usize) -> Result<Vec<u64>, DriverError> {
    let probe =
        sunbfs_rmat::generate_range(params, 0, (k as u64 * 64 + 64).min(params.num_edges()));
    let mut roots = Vec::with_capacity(k);
    for e in &probe {
        if e.is_self_loop() {
            continue;
        }
        if !roots.contains(&e.u) {
            roots.push(e.u);
        }
        if roots.len() == k {
            break;
        }
        if !roots.contains(&e.v) {
            roots.push(e.v);
        }
        if roots.len() == k {
            break;
        }
    }
    if roots.is_empty() {
        return Err(DriverError::NoConnectedRoot);
    }
    Ok(roots)
}

/// Fold one all-ranks-Ok SPMD batch into root-major storage.
///
/// `indices[bi]` is the global root index of the batch's `bi`-th root.
/// Engine failure is replicated state — every rank reports the same
/// error — so collecting across ranks loses nothing.
fn fold_batch(
    rank_results: Vec<(ComponentStats, Vec<Result<BfsOutput, EngineError>>)>,
    indices: &[usize],
    data: &mut [Option<Result<Vec<BfsOutput>, QuarantineReason>>],
    partition_stats: &mut Option<Vec<ComponentStats>>,
) {
    if partition_stats.is_none() {
        *partition_stats = Some(rank_results.iter().map(|(s, _)| *s).collect());
    }
    // Transpose rank-major results to root-major.
    let mut per_root: Vec<Vec<Result<BfsOutput, EngineError>>> =
        (0..indices.len()).map(|_| Vec::new()).collect();
    for (_, outputs) in rank_results {
        for (bi, out) in outputs.into_iter().enumerate() {
            per_root[bi].push(out);
        }
    }
    for (bi, outs) in per_root.into_iter().enumerate() {
        let folded: Result<Vec<BfsOutput>, EngineError> = outs.into_iter().collect();
        data[indices[bi]] = Some(folded.map_err(QuarantineReason::Engine));
    }
}

/// Run the complete benchmark pipeline.
///
/// Fault containment: a root whose traversal fails — injected rank
/// failure (after `max_root_retries` retries with backoff), replicated
/// engine error, or Graph 500 validation failure — is *quarantined*
/// rather than aborting the benchmark. The report is then complete but
/// degraded: its TEPS statistics cover the surviving roots and
/// [`BenchmarkReport::faults`] records what happened.
///
/// Two self-healing layers run underneath the retry loop: corrupted
/// exchange payloads are detected and retransmitted inside the
/// collectives (so corruption normally never costs an attempt), and
/// every completed BFS iteration is checkpointed so a retried root
/// resumes from its last verified checkpoint instead of re-traversing
/// from scratch — [`BenchmarkReport::recovery`] accounts for both.
///
/// # Errors
/// Returns [`DriverError::NoConnectedRoot`] when no usable root exists
/// and [`DriverError::InvalidFaultPlan`] when `SUNBFS_FAULT_PLAN` is
/// set but unparseable. Per-root failures never surface here.
pub fn run_benchmark(config: &RunConfig) -> Result<BenchmarkReport, DriverError> {
    run_benchmark_with_sleeper(config, &mut std::thread::sleep)
}

/// [`run_benchmark`] with the retry backoff's sleep injectable: tests
/// capture the exact backoff schedule (and skip the real delays)
/// instead of asserting on wall-clock time.
pub fn run_benchmark_with_sleeper(
    config: &RunConfig,
    sleep: &mut dyn FnMut(Duration),
) -> Result<BenchmarkReport, DriverError> {
    let wall_start = Instant::now();
    let params = config.rmat();
    let n = params.num_vertices();
    let p = config.mesh.num_ranks() as u64;
    let roots = pick_roots(&params, config.num_roots)?;
    let plan = match FaultPlan::from_env() {
        Err(e) => return Err(DriverError::InvalidFaultPlan(e)),
        Ok(Some(plan)) => plan,
        Ok(None) => FaultPlan::generate(&config.faults, config.mesh.num_ranks()),
    };
    if config.serve_batch || config.save_graph.is_some() || config.load_graph.is_some() {
        return run_benchmark_serve(config, &roots, plan, wall_start);
    }
    let fault_free = plan.is_empty();
    let cluster = Cluster::with_faults(config.mesh, config.machine, plan);

    // One SPMD pass over a batch of roots: each rank generates its
    // chunk, builds the partition, traverses every root in the batch.
    // A root's engine error does NOT short-circuit the batch — the
    // error is replicated, collectives stay in lock-step, and the
    // remaining roots still run.
    let bfs_wall = std::cell::Cell::new(0.0f64);
    let spmd = |batch: &[u64], checkpoints: Option<&CheckpointStore>| {
        let t = Instant::now();
        let out = cluster.run_fallible(|ctx| {
            let chunk = sunbfs_rmat::generate_chunk(&params, ctx.rank() as u64, p);
            let part = build_1p5d(ctx, n, &chunk, config.thresholds);
            drop(chunk);
            let outputs: Vec<Result<BfsOutput, EngineError>> = batch
                .iter()
                .map(|&root| run_bfs_recoverable(ctx, &part, root, &config.engine, checkpoints))
                .collect();
            (part.stats, outputs)
        });
        bfs_wall.set(bfs_wall.get() + t.elapsed().as_secs_f64());
        out
    };

    let mut data: Vec<Option<Result<Vec<BfsOutput>, QuarantineReason>>> =
        (0..roots.len()).map(|_| None).collect();
    let mut attempts: Vec<u32> = vec![0; roots.len()];
    let mut salvaged: Vec<u32> = vec![0; roots.len()];
    let mut checkpoints_taken = 0u64;
    let mut partition_stats: Option<Vec<ComponentStats>> = None;
    let mut total_retries = 0u64;
    let mut pending: Vec<usize> = (0..roots.len()).collect();

    // Fast path: nothing planned — all roots in one SPMD phase, one
    // partition build, no checkpointing overhead. A rank failure here
    // (an SPMD bug surfacing at run time, not an injection) falls
    // through to the containment loop with this batch charged as every
    // root's first attempt.
    if fault_free {
        let res = spmd(&roots, None);
        if res.iter().all(Result::is_ok) {
            let rank_results = res.into_iter().map(|r| r.unwrap()).collect();
            fold_batch(rank_results, &pending, &mut data, &mut partition_stats);
            pending.clear();
        }
        for a in attempts.iter_mut() {
            *a = 1;
        }
    }

    // Containment path: one root at a time so a lost rank only costs
    // that root's attempt. Bounded retry with exponential backoff —
    // injected faults fire at most once per cluster lifetime, so a
    // retry on the healed cluster exercises the transient-fault model.
    // Each attempt checkpoints every completed iteration into the
    // root's store, and a retry resumes from the last verified common
    // checkpoint instead of restarting the root from scratch.
    for ri in pending {
        let root = roots[ri];
        let budget = 1 + config.max_root_retries;
        let store = CheckpointStore::new(config.mesh.num_ranks());
        loop {
            attempts[ri] += 1;
            // What this attempt inherits: the iterations it will NOT
            // re-run. Zero on the first attempt (empty store).
            salvaged[ri] = store.common_iter().unwrap_or(0);
            let mut oks = Vec::new();
            let mut failures = Vec::new();
            for r in spmd(std::slice::from_ref(&root), Some(&store)) {
                match r {
                    Ok(v) => oks.push(v),
                    Err(f) => failures.push(f),
                }
            }
            if failures.is_empty() {
                fold_batch(oks, &[ri], &mut data, &mut partition_stats);
                break;
            }
            if attempts[ri] >= budget {
                data[ri] = Some(Err(QuarantineReason::RankFailure {
                    attempts: attempts[ri],
                    failures,
                }));
                break;
            }
            total_retries += 1;
            sleep(Duration::from_millis(1u64 << attempts[ri].min(6)));
        }
        checkpoints_taken += store.saves();
    }

    // Aggregation and validation. A validation failure quarantines the
    // root rather than aborting: the report stays complete.
    let full_edges: Option<Vec<Edge>> = config
        .validate
        .then(|| sunbfs_rmat::generate_edges(&params));
    let mut runs = Vec::with_capacity(roots.len());
    let mut quarantined = Vec::new();
    let mut outcomes = Vec::with_capacity(roots.len());
    for (ri, &root) in roots.iter().enumerate() {
        let quarantine = |reason: QuarantineReason, quarantined: &mut Vec<QuarantinedRoot>| {
            quarantined.push(QuarantinedRoot { root, reason });
            RootOutcome {
                root,
                attempts: attempts[ri],
                quarantined: true,
                iterations_salvaged: salvaged[ri],
            }
        };
        let per_rank: Vec<BfsOutput> = match data[ri].take().expect("every root resolved") {
            Err(reason) => {
                let o = quarantine(reason, &mut quarantined);
                outcomes.push(o);
                continue;
            }
            Ok(v) => v,
        };
        let mut times = TimeAccumulator::new();
        let mut comm = CommStats::new();
        let mut sim_seconds = 0.0f64;
        for out in &per_rank {
            times.merge(&out.stats.times);
            comm.merge(&out.stats.comm);
            sim_seconds = sim_seconds.max(out.stats.sim_seconds);
        }
        let stats0 = &per_rank[0].stats;
        let engine_traversed_edges = stats0.traversed_edges;
        // Spec-conformant TEPS `m`: duplicate generator edges count
        // once. Only computable with the full edge list on the driver,
        // so fall back to the engine's estimate when not validating.
        let mut traversed_edges = engine_traversed_edges;
        if let Some(edges) = &full_edges {
            let parents: Vec<u64> = per_rank
                .iter()
                .flat_map(|o| o.parents.iter().copied())
                .collect();
            if let Err(error) = validate::validate_parents(n, edges, root, &parents) {
                let o = quarantine(QuarantineReason::Validation(error), &mut quarantined);
                outcomes.push(o);
                continue;
            }
            traversed_edges = validate::component_edges(edges, &parents);
        }
        runs.push(RootRun {
            root,
            sim_seconds,
            traversed_edges,
            engine_traversed_edges,
            visited_vertices: stats0.visited_vertices,
            gteps: if sim_seconds > 0.0 {
                traversed_edges as f64 / sim_seconds / 1e9
            } else {
                0.0
            },
            iterations: stats0.iterations.clone(),
            times,
            comm,
        });
        outcomes.push(RootOutcome {
            root,
            attempts: attempts[ri],
            quarantined: false,
            iterations_salvaged: salvaged[ri],
        });
    }
    let iterations_salvaged = outcomes.iter().map(|o| o.iterations_salvaged as u64).sum();
    let faults = FaultReport {
        injected: cluster.fault_log(),
        outcomes,
        quarantined,
        total_retries,
    };
    let recovery = RecoveryReport {
        retransmit_log: cluster.retransmit_log(),
        checkpoints_taken,
        iterations_salvaged,
    };
    let wall = WallClockReport::new(wall_start.elapsed().as_secs_f64(), bfs_wall.get(), &runs);
    Ok(BenchmarkReport {
        config: config.clone(),
        partition_stats: partition_stats.unwrap_or_default(),
        runs,
        validated: full_edges.is_some() && faults.quarantined.is_empty(),
        faults,
        recovery,
        serve: None,
        store: None,
        wall,
    })
}

/// The serve-path benchmark: load one resident session, submit every
/// root to the [`BfsService`], drain, and translate the per-query
/// results into the classic report shape (plus the `serve` section).
///
/// Per-query latency semantics: a batched rider's `sim_seconds` is its
/// *batch's* simulated time — the whole point is that up to 64 riders
/// share it. GTEPS per root is therefore a service-level number, not
/// comparable 1:1 with the per-root loop's.
fn run_benchmark_serve(
    config: &RunConfig,
    roots: &[u64],
    plan: FaultPlan,
    wall_start: Instant,
) -> Result<BenchmarkReport, DriverError> {
    let session_cfg = SessionConfig {
        scale: config.scale,
        edge_factor: config.edge_factor,
        mesh: config.mesh,
        thresholds: config.thresholds,
        engine: config.engine,
        machine: config.machine,
        seed: config.seed,
        max_load_attempts: 1 + config.max_root_retries,
    };
    let bfs_wall_start = Instant::now();
    let mut session = match &config.load_graph {
        Some(path) => GraphSession::open_or_build(std::path::Path::new(path), session_cfg, plan)
            .map_err(|e| DriverError::SessionLoad(e.to_string()))?,
        None => GraphSession::load(session_cfg, plan)
            .map_err(|e| DriverError::SessionLoad(e.to_string()))?,
    };
    if let Some(path) = &config.save_graph {
        // open_or_build may already have written this exact file on its
        // build branch — don't pay the encode twice.
        let already = session
            .store
            .as_ref()
            .is_some_and(|s| s.saved && s.path == *path);
        if !already {
            session
                .save(std::path::Path::new(path))
                .map_err(|e| DriverError::SessionLoad(e.to_string()))?;
        }
    }
    let store_activity = session.store.clone();
    let n = session.num_vertices();
    let partition_stats = session.partition_stats.clone();
    let mut service = BfsService::new(
        session,
        ServeConfig {
            queue_capacity: roots.len().max(1),
            // A store-only run (save/load without --serve) keeps the
            // classic one-root-per-traversal semantics.
            batch_max: if config.serve_batch {
                ServeConfig::default().batch_max
            } else {
                1
            },
            max_root_retries: config.max_root_retries,
            measure_baseline: config.serve_baseline,
            ..ServeConfig::default()
        },
    );
    for &root in roots {
        service
            .submit(root)
            .expect("capacity covers every root and pick_roots yields in-range roots");
    }
    let mut results = service.drain();
    results.sort_by_key(|r| r.id);
    let bfs_wall = bfs_wall_start.elapsed().as_secs_f64();

    let full_edges: Option<Vec<Edge>> = config
        .validate
        .then(|| sunbfs_rmat::generate_edges(&config.rmat()));
    let mut runs = Vec::with_capacity(results.len());
    let mut quarantined = Vec::new();
    let mut outcomes = Vec::with_capacity(results.len());
    for r in &results {
        let push_quarantine = |reason: QuarantineReason, quarantined: &mut Vec<_>| {
            quarantined.push(QuarantinedRoot {
                root: r.root,
                reason,
            });
            RootOutcome {
                root: r.root,
                attempts: 1,
                quarantined: true,
                iterations_salvaged: 0,
            }
        };
        let parents = match (&r.status, &r.parents) {
            (QueryStatus::Quarantined(q), _) => {
                let o = push_quarantine(QuarantineReason::Serve(q.clone()), &mut quarantined);
                outcomes.push(o);
                continue;
            }
            (QueryStatus::Served, Some(parents)) => parents,
            (QueryStatus::Served, None) => unreachable!("served queries carry a parent handle"),
            (QueryStatus::DeadlineExceeded { .. }, _) => {
                unreachable!("driver queries carry no deadline budget")
            }
        };
        let engine_traversed_edges = r.engine_traversed_edges;
        let mut traversed_edges = engine_traversed_edges;
        if let Some(edges) = &full_edges {
            if let Err(error) = validate::validate_parents(n, edges, r.root, parents) {
                let o = push_quarantine(QuarantineReason::Validation(error), &mut quarantined);
                outcomes.push(o);
                continue;
            }
            traversed_edges = validate::component_edges(edges, parents);
        }
        runs.push(RootRun {
            root: r.root,
            sim_seconds: r.sim_latency_s,
            traversed_edges,
            engine_traversed_edges,
            visited_vertices: r.visited,
            gteps: if r.sim_latency_s > 0.0 {
                traversed_edges as f64 / r.sim_latency_s / 1e9
            } else {
                0.0
            },
            iterations: Vec::new(),
            times: TimeAccumulator::new(),
            comm: CommStats::new(),
        });
        outcomes.push(RootOutcome {
            root: r.root,
            attempts: 1,
            quarantined: false,
            iterations_salvaged: 0,
        });
    }
    let faults = FaultReport {
        injected: service.session().cluster().fault_log(),
        outcomes,
        quarantined,
        total_retries: 0,
    };
    let recovery = RecoveryReport {
        retransmit_log: service.session().cluster().retransmit_log(),
        checkpoints_taken: 0,
        iterations_salvaged: 0,
    };
    let wall = WallClockReport::new(wall_start.elapsed().as_secs_f64(), bfs_wall, &runs);
    Ok(BenchmarkReport {
        config: config.clone(),
        partition_stats,
        runs,
        validated: full_edges.is_some() && faults.quarantined.is_empty(),
        faults,
        recovery,
        serve: Some(service.report()),
        store: store_activity,
        wall,
    })
}

/// Re-exported so callers can name validation errors without another
/// import path.
pub type DriverValidationError = ValidationError;

/// Re-exported so callers can configure fault campaigns without
/// importing `sunbfs_net` directly.
pub use sunbfs_net::FaultSpec;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_benchmark_runs_and_validates() {
        let report = run_benchmark(&RunConfig::small_test(9, 4)).expect("benchmark must pass");
        assert!(report.validated);
        assert_eq!(report.runs.len(), 3);
        assert!(report.mean_gteps() > 0.0);
        assert!(report.harmonic_mean_gteps() <= report.mean_gteps() + 1e-12);
        assert_eq!(report.partition_stats.len(), 4);
        // Fault-free run: complete bookkeeping, nothing degraded.
        assert!(!report.faults.degraded());
        assert!(report.faults.injected.is_empty());
        assert_eq!(report.faults.total_retries, 0);
        assert_eq!(report.faults.outcomes.len(), 3);
        assert!(report
            .faults
            .outcomes
            .iter()
            .all(|o| o.attempts == 1 && !o.quarantined));
    }

    #[test]
    fn validated_teps_is_spec_conformant_at_scale_9() {
        // Acceptance criterion: on every validated root the driver's
        // TEPS `m` equals `validate::component_edges`, and the engine's
        // multigraph degree-sum estimate is never below it.
        let config = RunConfig::small_test(9, 4);
        let report = run_benchmark(&config).expect("benchmark must pass");
        let params = RmatParams::graph500(config.scale, config.seed);
        let edges = sunbfs_rmat::generate_edges(&params);
        for run in &report.runs {
            let (parents, _) = validate::reference_bfs(params.num_vertices(), &edges, run.root);
            let spec_m = validate::component_edges(&edges, &parents);
            assert_eq!(run.traversed_edges, spec_m, "root {}", run.root);
            assert!(
                run.engine_traversed_edges >= spec_m,
                "engine estimate {} below spec count {spec_m} for root {}",
                run.engine_traversed_edges,
                run.root
            );
            assert!(run.gteps > 0.0);
        }
    }

    #[test]
    fn roots_are_distinct_and_connected() {
        let params = RmatParams::graph500(10, 7);
        let roots = pick_roots(&params, 8).expect("scale-10 graph has connected roots");
        assert_eq!(roots.len(), 8);
        let mut dedup = roots.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "roots must be distinct");
        let deg =
            sunbfs_rmat::degrees(params.num_vertices(), &sunbfs_rmat::generate_edges(&params));
        for r in roots {
            assert!(deg[r as usize] > 0, "root {r} is isolated");
        }
    }

    #[test]
    fn degenerate_partitions_also_validate() {
        let mut cfg = RunConfig::small_test(9, 4);
        cfg.thresholds = Thresholds::none();
        assert!(run_benchmark(&cfg).expect("none-thresholds run").validated);
        cfg.thresholds = Thresholds::all_hubs(1 << 20);
        cfg.num_roots = 1;
        assert!(run_benchmark(&cfg).expect("all-hubs run").validated);
    }

    #[test]
    fn driver_error_displays() {
        let e = DriverError::Validation {
            root: 7,
            error: ValidationError::BadRoot,
        };
        assert!(e.to_string().contains("root 7"));
        assert!(DriverError::NoConnectedRoot
            .to_string()
            .contains("connected root"));
        assert!(DriverError::InvalidFaultPlan("bad event".into())
            .to_string()
            .contains("SUNBFS_FAULT_PLAN"));
    }

    #[test]
    fn retry_recovers_a_transient_rank_panic() {
        // One injected panic; faults fire once per cluster lifetime, so
        // the first retry of the victim root succeeds and the report is
        // NOT degraded.
        let mut cfg = RunConfig::small_test(8, 4);
        cfg.faults = FaultSpec {
            seed: 11,
            panics: 1,
            stragglers: 0,
            corruptions: 0,
            straggler_secs: 0.0,
            horizon: 50,
        };
        cfg.max_root_retries = 2;
        let report = run_benchmark(&cfg).expect("retry must absorb the fault");
        assert!(report.validated, "recovered run still validates");
        assert_eq!(report.runs.len(), 3, "no root lost");
        assert!(!report.faults.degraded());
        assert_eq!(report.faults.injected.len(), 1, "the panic was logged");
        assert_eq!(report.faults.total_retries, 1, "exactly one retry spent");
        assert_eq!(
            report
                .faults
                .outcomes
                .iter()
                .map(|o| o.attempts)
                .sum::<u32>(),
            4,
            "three roots, one of which needed a second attempt"
        );
    }

    #[test]
    fn exhausted_retries_quarantine_the_root_and_degrade_the_report() {
        // Repeated panics on the same rank exhaust the retry budget for
        // root 0; the benchmark still completes with the other roots.
        let mut cfg = RunConfig::small_test(8, 4);
        cfg.faults = FaultSpec {
            seed: 3,
            panics: 6,
            stragglers: 0,
            corruptions: 0,
            straggler_secs: 0.0,
            horizon: 2,
        };
        cfg.max_root_retries = 1;
        let report = run_benchmark(&cfg).expect("degraded, not aborted");
        assert!(report.faults.degraded());
        assert!(!report.validated, "a degraded report is never validated");
        assert!(!report.faults.quarantined.is_empty());
        let q = &report.faults.quarantined[0];
        assert_eq!(q.reason.label(), "rank_failure");
        assert!(q.reason.detail().contains("attempts exhausted"));
        assert_eq!(
            report.runs.len() + report.faults.quarantined.len(),
            3,
            "every root accounted for: surviving runs + quarantined"
        );
        for run in &report.runs {
            assert!(run.gteps > 0.0, "survivors still carry statistics");
        }
    }
}
