//! Property-based tests: PARADIS radix sort against the standard
//! library, and PSRS global sortedness/permutation invariants.

use proptest::prelude::*;
use sunbfs_common::MachineConfig;
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_sort::{psrs_sort_by_key, radix_sort_in_place, radix_sort_u64};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-key radix sort agrees with `sort_unstable` on arbitrary input.
    #[test]
    fn radix_matches_std(mut v in prop::collection::vec(any::<u64>(), 0..5000), workers in 1usize..5) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_u64(&mut v, workers);
        prop_assert_eq!(v, expect);
    }

    /// Partial-key sorts order by the masked key and preserve the multiset.
    #[test]
    fn partial_key_radix(mut v in prop::collection::vec(any::<u64>(), 0..3000), kb in 1u32..8) {
        let orig = v.clone();
        radix_sort_in_place(&mut v, &|x: &u64| *x, 2, kb);
        let mask = if kb == 8 { u64::MAX } else { (1u64 << (kb * 8)) - 1 };
        prop_assert!(v.windows(2).all(|w| (w[0] & mask) <= (w[1] & mask)));
        let mut a = orig;
        let mut b = v;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Low-entropy keys (the adversarial case for speculation/repair).
    #[test]
    fn radix_low_entropy(mut v in prop::collection::vec(0u64..4, 0..4000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_u64(&mut v, 4);
        prop_assert_eq!(v, expect);
    }
}

proptest! {
    // Cluster tests spawn threads; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// PSRS produces a globally sorted permutation on any mesh shape.
    #[test]
    fn psrs_global_sort(
        rows in 1usize..3,
        cols in 1usize..4,
        per_rank in 0usize..2000,
        seed in any::<u64>(),
    ) {
        let cluster = Cluster::new(MeshShape::new(rows, cols), MachineConfig::new_sunway());
        let out = cluster.run(|ctx| {
            let mut rng = sunbfs_common::SplitMix64::new(seed ^ ctx.rank() as u64);
            let local: Vec<u64> = (0..per_rank).map(|_| rng.next_u64()).collect();
            (local.clone(), psrs_sort_by_key(ctx, "sort", local, |x| *x, 8))
        });
        let mut input: Vec<u64> = out.iter().flat_map(|(i, _)| i.iter().copied()).collect();
        let sorted: Vec<u64> = out.iter().flat_map(|(_, s)| s.iter().copied()).collect();
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "global order violated");
        input.sort_unstable();
        prop_assert_eq!(input, sorted);
    }
}
