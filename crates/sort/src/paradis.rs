//! PARADIS-style parallel in-place MSD radix sort.
//!
//! The paper's preprocessing builds all six subgraph components with an
//! *in-place global sort* (§5), whose node-local sort is PARADIS (Cho
//! et al., VLDB 2015) — a parallel in-place radix sort built from two
//! phases per digit:
//!
//! 1. **speculative permutation**: the positions of every bucket are
//!    pre-partitioned among workers; each worker cycle-chases elements
//!    within its own slices of all buckets, so workers never touch the
//!    same position and need no atomics;
//! 2. **repair**: speculation leaves a (usually tiny) set of misplaced
//!    elements; they are redistributed into the wrong-filled positions
//!    of their target buckets. (PARADIS iterates speculation on the
//!    residue; we place the residue directly — a small temp buffer of
//!    `O(misplaced)`, which keeps the algorithm deterministic and is
//!    faithful to its performance character since the residue is tiny.)
//!
//! Recursion proceeds MSD-first a byte at a time; small buckets fall
//! back to comparison sort.

/// Buckets smaller than this use the comparison-sort fallback.
const SMALL_SORT_THRESHOLD: usize = 64;

/// Number of buckets per digit (one byte).
const RADIX: usize = 256;

/// Sort `data` in place by `key(x)` ascending, using up to `workers`
/// threads for the top-level permutation.
///
/// `key_bytes` limits the number of MSD passes: keys must fit in the
/// low `key_bytes` bytes of the extracted `u64` (8 sorts full keys).
pub fn radix_sort_in_place<T, K>(data: &mut [T], key: &K, workers: usize, key_bytes: u32)
where
    T: Copy + Send,
    K: Fn(&T) -> u64 + Sync,
{
    assert!((1..=8).contains(&key_bytes));
    if data.len() <= 1 {
        return;
    }
    sort_level(data, key, workers.max(1), (key_bytes - 1) * 8);
}

/// Convenience: sort `u64`s in place over all 8 key bytes.
pub fn radix_sort_u64(data: &mut [u64], workers: usize) {
    radix_sort_in_place(data, &|x: &u64| *x, workers, 8);
}

fn digit<T, K: Fn(&T) -> u64>(key: &K, x: &T, shift: u32) -> usize {
    ((key(x) >> shift) & 0xff) as usize
}

fn sort_level<T, K>(data: &mut [T], key: &K, workers: usize, shift: u32)
where
    T: Copy + Send,
    K: Fn(&T) -> u64 + Sync,
{
    if data.len() < SMALL_SORT_THRESHOLD {
        // Comparison fallback must respect only the remaining low bytes.
        let mask = if shift == 56 {
            u64::MAX
        } else {
            (1u64 << (shift + 8)) - 1
        };
        data.sort_unstable_by_key(|x| key(x) & mask);
        return;
    }

    // ---- histogram ----
    let mut counts = [0usize; RADIX];
    for x in data.iter() {
        counts[digit(key, x, shift)] += 1;
    }
    let mut begins = [0usize; RADIX];
    let mut acc = 0;
    for b in 0..RADIX {
        begins[b] = acc;
        acc += counts[b];
    }

    permute_speculative(data, key, workers, shift, &begins, &counts);
    repair(data, key, shift, &begins, &counts);

    debug_assert!({
        let mut ok = true;
        #[allow(clippy::needless_range_loop)]
        for b in 0..RADIX {
            for p in begins[b]..begins[b] + counts[b] {
                ok &= digit(key, &data[p], shift) == b;
            }
        }
        ok
    });

    // ---- recurse into buckets ----
    if shift == 0 {
        return;
    }
    let mut rest = data;
    for &count in counts.iter().take(RADIX) {
        let (bucket, tail) = rest.split_at_mut(count);
        rest = tail;
        if bucket.len() > 1 {
            // Inner levels run single-threaded: top-level parallelism
            // already saturates the workers and keeps determinism simple.
            sort_level(bucket, key, 1, shift - 8);
        }
    }
}

/// Disjoint-slice cell: workers access `data` only inside their own
/// per-bucket partitions, which are pairwise disjoint by construction.
struct SharedSlice<T>(*mut T, usize);
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// # Safety
    /// Caller guarantees `idx < len` and exclusive access to `idx`.
    #[inline]
    unsafe fn get(&self, idx: usize) -> *mut T {
        debug_assert!(idx < self.1);
        unsafe { self.0.add(idx) }
    }
}

/// PARADIS speculative phase: each worker owns slice `w` of every
/// bucket's range and cycle-chases elements between its own slices.
fn permute_speculative<T, K>(
    data: &mut [T],
    key: &K,
    workers: usize,
    shift: u32,
    begins: &[usize; RADIX],
    counts: &[usize; RADIX],
) where
    T: Copy + Send,
    K: Fn(&T) -> u64 + Sync,
{
    let workers = workers.min(data.len() / SMALL_SORT_THRESHOLD).max(1);
    let len = data.len();
    let shared = SharedSlice(data.as_mut_ptr(), len);

    let run_worker = |w: usize| {
        // Worker w's partition of bucket b: an even slice of its range.
        let mut head = [0usize; RADIX];
        let mut end = [0usize; RADIX];
        for b in 0..RADIX {
            let c = counts[b];
            head[b] = begins[b] + c * w / workers;
            end[b] = begins[b] + c * (w + 1) / workers;
        }
        for b in 0..RADIX {
            let mut p = head[b];
            while p < end[b] {
                // SAFETY: p and all head[d] positions below lie inside
                // worker w's partitions, disjoint from other workers'.
                let mut v = unsafe { *shared.get(p) };
                let mut d = digit(key, &v, shift);
                // Cycle-chase v toward its bucket while we have room.
                while d != b && head[d] < end[d] {
                    let q = head[d];
                    head[d] += 1;
                    unsafe {
                        let slot = shared.get(q);
                        core::ptr::swap(&mut v, slot);
                    }
                    d = digit(key, &v, shift);
                }
                unsafe {
                    *shared.get(p) = v;
                }
                p += 1;
                if head[b] < p {
                    head[b] = p;
                }
            }
        }
    };

    if workers == 1 {
        run_worker(0);
    } else {
        // Staff the fixed worker partitions from the shared intra-rank
        // pool: the partition count (and therefore the permutation
        // result) is set by `workers` alone, while the number of OS
        // threads actually running them follows the pool's global
        // `SUNBFS_WORKERS` budget — byte-identical output either way.
        let run_worker = &run_worker;
        sunbfs_common::pool::run_ranges(workers as u64, 1, |_, r| {
            for w in r {
                run_worker(w as usize);
            }
        });
    }
}

/// Repair phase: collect still-misplaced elements and write each into a
/// wrong-filled slot of its target bucket.
fn repair<T, K>(
    data: &mut [T],
    key: &K,
    shift: u32,
    begins: &[usize; RADIX],
    counts: &[usize; RADIX],
) where
    T: Copy,
    K: Fn(&T) -> u64,
{
    let mut misplaced: Vec<T> = Vec::new();
    let mut holes: Vec<usize> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for b in 0..RADIX {
        for p in begins[b]..begins[b] + counts[b] {
            if digit(key, &data[p], shift) != b {
                misplaced.push(data[p]);
                holes.push(p);
            }
        }
    }
    if misplaced.is_empty() {
        return;
    }
    // Group the misplaced elements by target digit, then walk the holes
    // (which are exactly the positions needing those digits, bucket by
    // bucket) and fill each with a matching element.
    let mut by_digit: Vec<Vec<T>> = (0..RADIX).map(|_| Vec::new()).collect();
    for v in misplaced {
        by_digit[digit(key, &v, shift)].push(v);
    }
    for &p in &holes {
        let b = bucket_of_pos(p, begins, counts);
        data[p] = by_digit[b].pop().expect("repair accounting violated");
    }
    debug_assert!(by_digit.iter().all(Vec::is_empty));
}

fn bucket_of_pos(p: usize, begins: &[usize; RADIX], counts: &[usize; RADIX]) -> usize {
    // Binary search over bucket ranges.
    let mut lo = 0usize;
    let mut hi = RADIX - 1;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if begins[mid] <= p {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    debug_assert!(p >= begins[lo] && p < begins[lo] + counts[lo].max(1));
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use sunbfs_common::SplitMix64;

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    fn assert_sorted_permutation(original: &[u64], sorted: &[u64]) {
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "not sorted");
        let mut a = original.to_vec();
        a.sort_unstable();
        assert_eq!(a, sorted, "not a permutation of the input");
    }

    #[test]
    fn sorts_random_u64() {
        for &n in &[0usize, 1, 2, 63, 64, 65, 1000, 100_000] {
            let orig = random_vec(n, n as u64);
            let mut v = orig.clone();
            radix_sort_u64(&mut v, 4);
            assert_sorted_permutation(&orig, &v);
        }
    }

    #[test]
    fn sorts_with_single_worker() {
        let orig = random_vec(10_000, 3);
        let mut v = orig.clone();
        radix_sort_u64(&mut v, 1);
        assert_sorted_permutation(&orig, &v);
    }

    #[test]
    fn sorts_skewed_distributions() {
        // All-equal, two-value, and low-entropy inputs stress the
        // speculation/repair paths.
        let mut v = vec![42u64; 10_000];
        radix_sort_u64(&mut v, 4);
        assert!(v.iter().all(|&x| x == 42));

        let mut rng = SplitMix64::new(7);
        let orig: Vec<u64> = (0..50_000).map(|_| rng.next_below(3)).collect();
        let mut v = orig.clone();
        radix_sort_u64(&mut v, 4);
        assert_sorted_permutation(&orig, &v);
    }

    #[test]
    fn partial_key_bytes_sorts_by_low_bytes_only() {
        let mut rng = SplitMix64::new(8);
        let orig: Vec<u64> = (0..20_000).map(|_| rng.next_u64()).collect();
        let mut v = orig.clone();
        radix_sort_in_place(&mut v, &|x: &u64| *x, 4, 2);
        assert!(v.windows(2).all(|w| (w[0] & 0xffff) <= (w[1] & 0xffff)));
        let mut a: Vec<u64> = orig.clone();
        let mut b = v.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn sorts_structs_by_key() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Pair {
            k: u32,
            payload: u32,
        }
        let mut rng = SplitMix64::new(9);
        let orig: Vec<Pair> = (0..30_000)
            .map(|i| Pair {
                k: rng.next_below(1000) as u32,
                payload: i,
            })
            .collect();
        let mut v = orig.clone();
        radix_sort_in_place(&mut v, &|p: &Pair| p.k as u64, 4, 4);
        assert!(v.windows(2).all(|w| w[0].k <= w[1].k));
        // Payload multiset preserved.
        let mut a: Vec<u32> = orig.iter().map(|p| p.payload).collect();
        let mut b: Vec<u32> = v.iter().map(|p| p.payload).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_counts_agree() {
        let orig = random_vec(200_000, 11);
        let mut one = orig.clone();
        let mut many = orig.clone();
        radix_sort_u64(&mut one, 1);
        radix_sort_u64(&mut many, 8);
        assert_eq!(one, many);
    }
}
