//! Network cost model.
//!
//! Functional data movement in this runtime is exact (bytes really move
//! between rank threads); *time* is charged analytically from the same
//! volumes, using the machine constants of §3.2:
//!
//! * every node injects/receives at NIC bandwidth (200 Gbps),
//! * traffic between supernodes shares uplinks that are oversubscribed
//!   8×, so the effective per-node inter-supernode bandwidth is
//!   `nic / oversubscription` when a whole supernode communicates at
//!   once (the regime of BFS collectives),
//! * collectives additionally pay `O(log₂ n)` software latency.
//!
//! The model intentionally has *no fitted constants beyond the machine
//! sheet*: the paper's scaling behaviour (Figures 9–11) must emerge from
//! volumes × topology alone.

use crate::topology::Topology;
use sunbfs_common::{MachineConfig, SimTime};

/// Which ranks participate in a collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scope {
    /// All ranks in the cluster.
    World,
    /// The caller's mesh row (one supernode).
    Row,
    /// The caller's mesh column (one rank per supernode).
    Col,
}

impl Scope {
    /// True when every member of the scope lives in the same supernode.
    pub fn intra_supernode(self) -> bool {
        matches!(self, Scope::Row)
    }
}

/// Effective per-node bandwidth for a scope: full NIC speed inside a
/// supernode, oversubscribed across supernodes.
#[inline]
pub fn scope_bandwidth(machine: &MachineConfig, scope: Scope) -> f64 {
    if scope.intra_supernode() {
        machine.nic_bandwidth
    } else {
        machine.nic_bandwidth / machine.oversubscription
    }
}

/// Latency term of an `n`-party collective.
#[inline]
pub fn collective_latency(machine: &MachineConfig, n: usize) -> SimTime {
    let hops = (n.max(2) as f64).log2().ceil();
    SimTime::secs(machine.net_latency * hops)
}

/// Cost of an irregular all-to-all given the full byte-volume matrix
/// `volumes[src][dst]` (scope-local indices; `members` maps them to
/// global ranks for supernode attribution).
///
/// Three bottleneck candidates are evaluated and the worst taken:
/// per-node injection, per-node reception, and per-supernode uplink
/// (inter-supernode volume over the oversubscribed capacity).
pub fn alltoallv_cost(
    machine: &MachineConfig,
    topo: &Topology,
    members: &[usize],
    volumes: &[Vec<u64>],
) -> SimTime {
    let n = members.len();
    debug_assert_eq!(volumes.len(), n);
    if n <= 1 {
        return SimTime::ZERO;
    }
    let mut inject = vec![0u64; n];
    let mut receive = vec![0u64; n];
    // Inter-supernode byte totals, per supernode (out + in).
    let mut sn_traffic = vec![0u64; topo.num_supernodes()];
    for (s, row) in volumes.iter().enumerate() {
        debug_assert_eq!(row.len(), n);
        for (d, &bytes) in row.iter().enumerate() {
            if s == d || bytes == 0 {
                continue;
            }
            inject[s] += bytes;
            receive[d] += bytes;
            let sn_s = topo.supernode_of(members[s]);
            let sn_d = topo.supernode_of(members[d]);
            if sn_s != sn_d {
                sn_traffic[sn_s] += bytes;
                sn_traffic[sn_d] += bytes;
            }
        }
    }
    let nic = machine.nic_bandwidth;
    let uplink = machine.supernode_uplink(topo.supernode_size());
    let t_inject = inject.iter().map(|&b| b as f64 / nic).fold(0.0, f64::max);
    let t_receive = receive.iter().map(|&b| b as f64 / nic).fold(0.0, f64::max);
    let t_uplink = sn_traffic
        .iter()
        .map(|&b| b as f64 / uplink)
        .fold(0.0, f64::max);
    SimTime::secs(t_inject.max(t_receive).max(t_uplink)) + collective_latency(machine, n)
}

/// Cost of an all-gather where member `i` contributes `bytes[i]`.
/// Ring model: every rank receives everything except its own share.
pub fn allgatherv_cost(machine: &MachineConfig, scope: Scope, bytes: &[u64]) -> SimTime {
    let n = bytes.len();
    if n <= 1 {
        return SimTime::ZERO;
    }
    let total: u64 = bytes.iter().sum();
    let max_recv = bytes.iter().map(|&b| total - b).max().unwrap_or(0);
    SimTime::from_bytes(max_recv, scope_bandwidth(machine, scope)) + collective_latency(machine, n)
}

/// Cost of one half of a ring all-reduce over `bytes` bytes per rank —
/// either the reduce-scatter phase or the allgather phase (they cost the
/// same; the caller charges them under separate categories to reproduce
/// the paper's Figure 11 breakdown).
pub fn allreduce_half_cost(machine: &MachineConfig, scope: Scope, n: usize, bytes: u64) -> SimTime {
    if n <= 1 {
        return SimTime::ZERO;
    }
    let moved = bytes as f64 * (n as f64 - 1.0) / n as f64;
    SimTime::secs(moved / scope_bandwidth(machine, scope)) + collective_latency(machine, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::MeshShape;

    fn machine() -> MachineConfig {
        MachineConfig::new_sunway()
    }

    #[test]
    fn row_scope_is_full_bandwidth() {
        let m = machine();
        assert_eq!(scope_bandwidth(&m, Scope::Row), m.nic_bandwidth);
        assert_eq!(
            scope_bandwidth(&m, Scope::Col),
            m.nic_bandwidth / m.oversubscription
        );
        assert_eq!(
            scope_bandwidth(&m, Scope::World),
            m.nic_bandwidth / m.oversubscription
        );
    }

    #[test]
    fn alltoallv_single_rank_is_free() {
        let m = machine();
        let topo = Topology::new(MeshShape::new(1, 1));
        let c = alltoallv_cost(&m, &topo, &[0], &[vec![0]]);
        assert_eq!(c.as_secs(), 0.0);
    }

    #[test]
    fn alltoallv_intra_supernode_ignores_uplink() {
        let m = machine();
        // One row of four nodes: all traffic intra-supernode.
        let topo = Topology::new(MeshShape::new(1, 4));
        let members = [0, 1, 2, 3];
        let gb = 1_000_000_000u64;
        let volumes: Vec<Vec<u64>> = (0..4)
            .map(|s| (0..4).map(|d| if s == d { 0 } else { gb }).collect())
            .collect();
        let t = alltoallv_cost(&m, &topo, &members, &volumes);
        // 3 GB injected at 25 GB/s = 0.12 s plus latency.
        let expect = 3.0 * gb as f64 / m.nic_bandwidth;
        assert!(
            (t.as_secs() - expect).abs() < 1e-4,
            "{} vs {}",
            t.as_secs(),
            expect
        );
    }

    #[test]
    fn alltoallv_cross_supernode_hits_oversubscription() {
        let m = machine();
        // A 4x1 column: every transfer crosses supernodes.
        let topo = Topology::new(MeshShape::new(4, 1));
        let members = [0, 1, 2, 3];
        let gb = 1_000_000_000u64;
        let volumes: Vec<Vec<u64>> = (0..4)
            .map(|s| (0..4).map(|d| if s == d { 0 } else { gb }).collect())
            .collect();
        let t = alltoallv_cost(&m, &topo, &members, &volumes);
        // Supernodes have one node here: uplink = nic/oversub; each
        // supernode moves 3 GB out + 3 GB in = 6 GB over 3.125 GB/s.
        let uplink = m.nic_bandwidth / m.oversubscription;
        let expect = 6.0 * gb as f64 / uplink;
        assert!(
            (t.as_secs() - expect).abs() / expect < 1e-3,
            "{} vs {}",
            t.as_secs(),
            expect
        );
    }

    #[test]
    fn bigger_messages_cost_more() {
        let m = machine();
        let topo = Topology::new(MeshShape::new(2, 2));
        let members = [0, 1, 2, 3];
        let small: Vec<Vec<u64>> = vec![vec![0, 10, 10, 10]; 4];
        let large: Vec<Vec<u64>> = vec![vec![0, 1000, 1000, 1000]; 4];
        assert!(
            alltoallv_cost(&m, &topo, &members, &large)
                > alltoallv_cost(&m, &topo, &members, &small)
        );
    }

    #[test]
    fn allgather_cost_scales_with_scope() {
        let m = machine();
        let bytes = vec![1_000_000u64; 8];
        let row = allgatherv_cost(&m, Scope::Row, &bytes);
        let col = allgatherv_cost(&m, Scope::Col, &bytes);
        assert!(col > row, "cross-supernode allgather must cost more");
    }

    #[test]
    fn allreduce_half_matches_ring_formula() {
        let m = machine();
        let t = allreduce_half_cost(&m, Scope::Row, 4, 4000);
        let expect = 3000.0 / m.nic_bandwidth + m.net_latency * 2.0;
        assert!((t.as_secs() - expect).abs() < 1e-12);
    }

    #[test]
    fn trivial_scopes_are_free() {
        let m = machine();
        assert_eq!(allgatherv_cost(&m, Scope::World, &[5]).as_secs(), 0.0);
        assert_eq!(
            allreduce_half_cost(&m, Scope::World, 1, 1 << 20).as_secs(),
            0.0
        );
    }
}
