//! **Figure 14** — throughput of different bucketing implementations.
//!
//! Paper (§6.3): bucketing 4 GB of uniformly random 64-bit integers by
//! their low 8 bits achieves 0.0406 GB/s on one MPE, 12.5 GB/s on one
//! core group with OCS-RMA, and 58.6 GB/s on six core groups (the
//! cross-CG atomics cost the difference from the ideal 75), i.e. a
//! 1443× speedup over the MPE and 47.0% memory-bandwidth utilization.
//!
//! This harness reruns the microbenchmark on the chip simulator with a
//! smaller payload (the model's throughput is size-independent above a
//! few MiB) and prints the same three rows.

use sunbfs_common::{MachineConfig, SplitMix64};
use sunbfs_sunway::{ocs_sort_mpe, ocs_sort_rma, OcsConfig};

fn main() {
    let machine = MachineConfig::new_sunway();
    let mib = 64usize;
    let n = mib * 1024 * 1024 / 8;
    let mut rng = SplitMix64::new(4242);
    let items: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let bytes = (n * 8) as u64;
    let bucket = |x: &u64| (x & 0xff) as usize;

    println!("=== Figure 14: bucketing throughput, {mib} MiB of u64 by low 8 bits ===\n");
    let (_, mpe) = ocs_sort_mpe(&machine, &items, 256, bucket);
    let (_, cg1) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 1, bucket);
    let (b6, cg6) = ocs_sort_rma(&machine, &OcsConfig::default(), &items, 256, 6, bucket);
    assert_eq!(b6.iter().map(Vec::len).sum::<usize>(), n, "items lost");

    let t_mpe = mpe.throughput(bytes) / 1e9;
    let t1 = cg1.throughput(bytes) / 1e9;
    let t6 = cg6.throughput(bytes) / 1e9;
    println!("  impl      measured GB/s    paper GB/s");
    println!("  MPE       {t_mpe:>12.4}        0.0406");
    println!("  1 CG      {t1:>12.2}        12.5");
    println!("  6 CGs     {t6:>12.2}        58.6");
    println!();
    println!("  6CG/MPE speedup: {:>8.0}x   (paper: 1443x)", t6 / t_mpe);
    println!(
        "  6CG/1CG scaling: {:>8.2}x   (paper: 4.69x of ideal 6x — atomics)",
        t6 / t1
    );
    println!(
        "  memory-bandwidth utilization at 6 CGs: {:.1}%   (paper: 47.0%)",
        100.0 * 2.0 * t6 * 1e9 / machine.dma_bandwidth
    );

    // Buffer-grain sweep: the 512-byte buffers of §4.4 are a deliberate
    // LDM-capacity / DMA-efficiency compromise.
    println!("\n  buffer-size sweep (1 CG):");
    for buf in [128usize, 256, 512, 1024, 2048] {
        let cfg = OcsConfig {
            buffer_bytes: buf,
            ..Default::default()
        };
        let (_, r) = ocs_sort_rma(&machine, &cfg, &items, 256, 1, bucket);
        println!(
            "    {buf:>5} B buffers: {:>7.2} GB/s  (rma puts: {})",
            r.throughput(bytes) / 1e9,
            r.rma_ops
        );
    }
}
