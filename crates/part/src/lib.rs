//! 3-level degree-aware 1.5D graph partitioning (§4.1) — the paper's
//! central data-layout contribution — plus its degenerate baselines.
//!
//! Vertices are classified by degree into **E** / **H** / **L** and the
//! edge set splits into six components with different storage and
//! communication disciplines:
//!
//! | component | storage | messaging |
//! |---|---|---|
//! | `EH2EH` | 2D-partitioned over the mesh by hub-id ranges | none (delegates) |
//! | `E2L`, `L2E` | owner of L | none (E is global) |
//! | `H2L` | row(owner L) × col(owner H) intersection | intra-row |
//! | `L2H` | owner of L | intra-row (folded into delegate sync) |
//! | `L2L` | owner of the source | global, hierarchically forwarded |
//!
//! Baselines are *configurations*, exactly as §4.1 observes: with
//! `|H| = 0` ([`Thresholds::heavy_only`]) the scheme degenerates to 1D
//! partitioning with heavy delegates; with `|L| = 0`
//! ([`Thresholds::all_hubs`]) it degenerates to 2D partitioning with
//! vertex reordering; [`Thresholds::none`] yields vanilla 1D.

pub mod builder;
pub mod csr;
pub mod directory;
pub mod distribution;

pub use builder::{build_1p5d, row_vertex_range, ComponentStats, RankPartition};
pub use csr::Csr;
pub use directory::{HubDirectory, Thresholds, VertexClass};
pub use distribution::VertexDistribution;
