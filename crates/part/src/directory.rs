//! Hub directory: the 3-level degree classification of §4.1.
//!
//! Vertices split by degree into **E** (extremely heavy, `deg ≥ e`
//! threshold), **H** (heavy, `h ≤ deg < e`), and **L** (the rest).
//! E and H vertices — the *hubs* — are "selected out of all vertices,
//! sorted per node by the degree, and given a new ID among the higher
//! degree vertices"; L vertices keep their original ids.
//!
//! The directory (hub id ↔ original vertex, degrees, class boundaries)
//! is replicated on every rank: hub counts are tiny by construction
//! (that is the whole point of the thresholds), so replication is the
//! cheap, communication-free choice the paper's delegates imply.
//!
//! Hub ids are ordered E-first, by descending degree: `hub < num_e` ⇔
//! class E. For the 2D partitioning of the EH2EH component, the hub id
//! space is block-split into `R` destination ranges and `C` source
//! ranges.

use std::collections::HashMap;

use sunbfs_common::VertexId;

/// Degree thresholds selecting the three classes. `u32::MAX` disables a
/// class (no vertex reaches it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Thresholds {
    /// Degree at or above which a vertex is Extremely heavy.
    pub e: u32,
    /// Degree at or above which a vertex is Heavy (must be ≤ `e`).
    pub h: u32,
}

impl Thresholds {
    /// New thresholds; `h ≤ e` is required.
    pub fn new(e: u32, h: u32) -> Self {
        assert!(h <= e, "H threshold {h} must not exceed E threshold {e}");
        Thresholds { e, h }
    }

    /// Degenerate configuration with no hubs at all (vanilla 1D).
    pub fn none() -> Self {
        Thresholds {
            e: u32::MAX,
            h: u32::MAX,
        }
    }

    /// 1D-with-heavy-delegates degeneration (`|H| = 0`): one delegate
    /// class only.
    pub fn heavy_only(e: u32) -> Self {
        Thresholds { e, h: e }
    }

    /// 2D degeneration (`|L| = 0` for every connected vertex): every
    /// vertex with an edge becomes a hub.
    pub fn all_hubs(e: u32) -> Self {
        Thresholds { e, h: 1 }
    }
}

/// Vertex class under a [`Thresholds`] setting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VertexClass {
    /// Extremely heavy: delegated on every rank.
    E,
    /// Heavy: delegated on mesh rows and columns.
    H,
    /// Light: owner-only state, per-edge messaging.
    L,
}

/// Replicated hub directory.
#[derive(Clone, Debug)]
pub struct HubDirectory {
    num_e: u32,
    hubs: Vec<(VertexId, u32)>, // (original vertex, degree), indexed by hub id
    hub_of: HashMap<VertexId, u32>,
}

impl HubDirectory {
    /// Build from the global `(vertex, degree)` list of all vertices
    /// with `degree ≥ thresholds.h`. Every rank must pass the same list
    /// (it is produced by an allgather); ordering here is canonical so
    /// all ranks derive identical hub ids.
    pub fn build(mut heavy: Vec<(VertexId, u32)>, thresholds: Thresholds) -> Self {
        // E-first, then by (degree desc, vertex asc) — deterministic.
        heavy.sort_unstable_by(|a, b| {
            let class_a = a.1 >= thresholds.e;
            let class_b = b.1 >= thresholds.e;
            class_b
                .cmp(&class_a)
                .then(b.1.cmp(&a.1))
                .then(a.0.cmp(&b.0))
        });
        let num_e = heavy.iter().take_while(|(_, d)| *d >= thresholds.e).count() as u32;
        let hub_of = heavy
            .iter()
            .enumerate()
            .map(|(i, (v, _))| (*v, i as u32))
            .collect();
        HubDirectory {
            num_e,
            hubs: heavy,
            hub_of,
        }
    }

    /// Rebuild a directory from its serialized parts: the hub table in
    /// its canonical (already sorted) order plus the E-class count.
    /// The reverse index is rederived, so a round-tripped directory is
    /// structurally identical to the one that was saved. `num_e` must
    /// not exceed the table length.
    pub fn from_parts(num_e: u32, hubs: Vec<(VertexId, u32)>) -> Self {
        assert!(
            (num_e as usize) <= hubs.len(),
            "num_e {num_e} exceeds hub count {}",
            hubs.len()
        );
        let hub_of = hubs
            .iter()
            .enumerate()
            .map(|(i, (v, _))| (*v, i as u32))
            .collect();
        HubDirectory {
            num_e,
            hubs,
            hub_of,
        }
    }

    /// The hub table in hub-id order (`(original vertex, degree)`).
    /// Exposed for serialization.
    #[inline]
    pub fn hubs(&self) -> &[(VertexId, u32)] {
        &self.hubs
    }

    /// An empty directory (no hubs; pure 1D partitioning).
    pub fn empty() -> Self {
        HubDirectory {
            num_e: 0,
            hubs: Vec::new(),
            hub_of: HashMap::new(),
        }
    }

    /// Number of E hubs.
    #[inline]
    pub fn num_e(&self) -> u32 {
        self.num_e
    }

    /// Number of H hubs.
    #[inline]
    pub fn num_h(&self) -> u32 {
        self.hubs.len() as u32 - self.num_e
    }

    /// Total hubs (`|E| + |H|`).
    #[inline]
    pub fn num_hubs(&self) -> u32 {
        self.hubs.len() as u32
    }

    /// Hub id of `v`, if `v` is a hub.
    #[inline]
    pub fn hub_id(&self, v: VertexId) -> Option<u32> {
        self.hub_of.get(&v).copied()
    }

    /// Class of vertex `v`.
    #[inline]
    pub fn class_of(&self, v: VertexId) -> VertexClass {
        match self.hub_id(v) {
            Some(h) if h < self.num_e => VertexClass::E,
            Some(_) => VertexClass::H,
            None => VertexClass::L,
        }
    }

    /// Original vertex of hub `h`.
    #[inline]
    pub fn vertex_of(&self, hub: u32) -> VertexId {
        self.hubs[hub as usize].0
    }

    /// Degree of hub `h`.
    #[inline]
    pub fn degree_of(&self, hub: u32) -> u32 {
        self.hubs[hub as usize].1
    }

    /// True when hub id `h` is in class E.
    #[inline]
    pub fn is_e(&self, hub: u32) -> bool {
        hub < self.num_e
    }

    /// Mesh row holding destination state of hub `h`.
    ///
    /// **Cyclic** placement: hub ids are degree-sorted, so a contiguous
    /// block split would concentrate all the heavy hubs on one mesh
    /// row/column; the cyclic ("block-cyclic flavor", §2.1.1) mapping
    /// interleaves them, which is what makes Figure 13's EH2EH balance
    /// possible.
    #[inline]
    pub fn dest_row(&self, hub: u32, rows: usize) -> usize {
        hub as usize % rows
    }

    /// Mesh column holding source state of hub `h` (cyclic, see
    /// [`Self::dest_row`]).
    #[inline]
    pub fn src_col(&self, hub: u32, cols: usize) -> usize {
        hub as usize % cols
    }

    /// Hub ids whose destination state mesh row `row` owns, ascending.
    pub fn dest_hubs(&self, row: usize, rows: usize) -> impl Iterator<Item = u64> {
        (row as u64..self.num_hubs() as u64).step_by(rows)
    }

    /// Hub ids whose source state mesh column `col` owns, ascending.
    pub fn src_hubs(&self, col: usize, cols: usize) -> impl Iterator<Item = u64> {
        (col as u64..self.num_hubs() as u64).step_by(cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_directory() -> HubDirectory {
        // Degrees: 100/90 are E (threshold 50), 40/30/20 are H (threshold 10).
        let heavy = vec![(7u64, 40u32), (3, 100), (11, 20), (5, 90), (9, 30)];
        HubDirectory::build(heavy, Thresholds::new(50, 10))
    }

    #[test]
    fn hub_ids_are_e_first_by_degree() {
        let d = sample_directory();
        assert_eq!(d.num_e(), 2);
        assert_eq!(d.num_h(), 3);
        assert_eq!(d.vertex_of(0), 3); // deg 100
        assert_eq!(d.vertex_of(1), 5); // deg 90
        assert_eq!(d.vertex_of(2), 7); // deg 40
        assert_eq!(d.vertex_of(4), 11); // deg 20
    }

    #[test]
    fn classes_resolve() {
        let d = sample_directory();
        assert_eq!(d.class_of(3), VertexClass::E);
        assert_eq!(d.class_of(9), VertexClass::H);
        assert_eq!(d.class_of(1000), VertexClass::L);
        assert!(d.is_e(0) && d.is_e(1) && !d.is_e(2));
    }

    #[test]
    fn hub_id_lookup_roundtrips() {
        let d = sample_directory();
        for h in 0..d.num_hubs() {
            assert_eq!(d.hub_id(d.vertex_of(h)), Some(h));
        }
        assert_eq!(d.hub_id(42), None);
    }

    #[test]
    fn degree_ties_break_by_vertex_id() {
        let heavy = vec![(9u64, 50u32), (2, 50), (5, 50)];
        let d = HubDirectory::build(heavy, Thresholds::new(100, 10));
        assert_eq!(d.vertex_of(0), 2);
        assert_eq!(d.vertex_of(1), 5);
        assert_eq!(d.vertex_of(2), 9);
    }

    #[test]
    fn cyclic_hub_placement_partitions_hub_space() {
        let d = sample_directory();
        for parts in 1..=6 {
            let mut seen = vec![false; d.num_hubs() as usize];
            for i in 0..parts {
                for h in d.dest_hubs(i, parts) {
                    assert_eq!(d.dest_row(h as u32, parts), i);
                    assert!(!seen[h as usize], "hub {h} assigned twice");
                    seen[h as usize] = true;
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "some hub unassigned at parts={parts}"
            );
        }
    }

    #[test]
    fn cyclic_placement_spreads_heavy_hubs() {
        // The top-`parts` heaviest hubs (lowest ids) must land on
        // distinct rows — the point of cyclic placement.
        let d = sample_directory();
        let rows: Vec<usize> = (0..4u32).map(|h| d.dest_row(h, 4)).collect();
        let mut dedup = rows.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn empty_directory_is_all_l() {
        let d = HubDirectory::empty();
        assert_eq!(d.num_hubs(), 0);
        assert_eq!(d.class_of(0), VertexClass::L);
    }

    #[test]
    fn degenerate_threshold_constructors() {
        assert_eq!(
            Thresholds::none(),
            Thresholds {
                e: u32::MAX,
                h: u32::MAX
            }
        );
        assert_eq!(Thresholds::heavy_only(32), Thresholds { e: 32, h: 32 });
        assert_eq!(Thresholds::all_hubs(1024), Thresholds { e: 1024, h: 1 });
    }

    #[test]
    #[should_panic]
    fn inverted_thresholds_rejected() {
        Thresholds::new(10, 20);
    }
}
