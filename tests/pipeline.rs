//! Workspace-level integration tests: the public `sunbfs` facade, end
//! to end — generator → partitioner → engine → validator — across mesh
//! shapes, threshold regimes, technique toggles, and multiple roots.

use sunbfs::common::MachineConfig;
use sunbfs::core::EngineConfig;
use sunbfs::driver::{pick_roots, run_benchmark, FaultSpec, RunConfig};
use sunbfs::net::MeshShape;
use sunbfs::part::Thresholds;
use sunbfs::rmat::RmatParams;

fn base_config(scale: u32, ranks: usize) -> RunConfig {
    RunConfig {
        scale,
        edge_factor: 16,
        mesh: MeshShape::near_square(ranks),
        thresholds: Thresholds::new(128, 32),
        engine: EngineConfig::default(),
        machine: MachineConfig::new_sunway(),
        seed: 4242,
        num_roots: 2,
        validate: true,
        faults: FaultSpec::NONE,
        max_root_retries: 2,
        serve_batch: false,
        serve_baseline: false,
        save_graph: None,
        load_graph: None,
    }
}

#[test]
fn quickstart_pipeline_validates() {
    let report = run_benchmark(&base_config(11, 4)).expect("benchmark must pass");
    assert!(report.validated);
    assert!(report.mean_gteps() > 0.0);
    // All roots traverse the same giant component of the R-MAT graph.
    let visited: Vec<u64> = report.runs.iter().map(|r| r.visited_vertices).collect();
    assert!(visited.iter().all(|&v| v == visited[0]));
}

#[test]
fn every_mesh_shape_validates() {
    for (rows, cols) in [(1usize, 1usize), (1, 6), (6, 1), (2, 3), (3, 3)] {
        let mut cfg = base_config(10, rows * cols);
        cfg.mesh = MeshShape::new(rows, cols);
        cfg.num_roots = 1;
        let report = run_benchmark(&cfg).expect("benchmark must pass");
        assert!(report.validated, "mesh {rows}x{cols} failed validation");
    }
}

#[test]
fn all_technique_combinations_validate_and_agree() {
    let mut reference_visits: Option<u64> = None;
    for sub_iteration in [false, true] {
        for segmenting in [false, true] {
            let mut cfg = base_config(11, 4);
            cfg.engine = EngineConfig {
                sub_iteration,
                segmenting,
                ..Default::default()
            };
            cfg.num_roots = 1;
            let report = run_benchmark(&cfg).expect("benchmark must pass");
            assert!(report.validated);
            let v = report.runs[0].visited_vertices;
            match reference_visits {
                None => reference_visits = Some(v),
                Some(expect) => assert_eq!(v, expect, "technique toggles changed reachability"),
            }
        }
    }
}

#[test]
fn threshold_regimes_all_validate() {
    for th in [
        Thresholds::none(),
        Thresholds::heavy_only(64),
        Thresholds::new(256, 16),
        Thresholds::all_hubs(1 << 20),
    ] {
        let mut cfg = base_config(10, 4);
        cfg.thresholds = th;
        cfg.num_roots = 1;
        let report = run_benchmark(&cfg).expect("benchmark must pass");
        assert!(report.validated, "thresholds {th:?} failed");
    }
}

#[test]
fn seeds_change_the_graph_but_not_correctness() {
    for seed in [1u64, 99, 123456789] {
        let mut cfg = base_config(10, 4);
        cfg.seed = seed;
        cfg.num_roots = 1;
        assert!(
            run_benchmark(&cfg).expect("benchmark must pass").validated,
            "seed {seed} failed"
        );
    }
}

#[test]
fn partition_stats_cover_all_edges() {
    let cfg = base_config(12, 9);
    let report = run_benchmark(&cfg).expect("benchmark must pass");
    let total: u64 = report.partition_stats.iter().map(|s| s.total()).sum();
    // Every undirected edge is stored at least twice (both orientations
    // of EH2EH/L2L) or once with two indexes (E-L, plus the duplicated
    // H-L copy); after dedup the total directed storage is bounded by
    // 3x the generated count and must be at least the deduplicated
    // undirected count.
    let m = (16u64) << 12;
    assert!(total >= m / 4, "suspiciously few stored edges: {total}");
    assert!(total <= 3 * m, "suspiciously many stored edges: {total}");
}

#[test]
fn simulated_times_scale_with_problem_size() {
    let small = run_benchmark(&RunConfig {
        validate: false,
        num_roots: 1,
        ..base_config(10, 4)
    })
    .expect("benchmark must pass");
    let large = run_benchmark(&RunConfig {
        validate: false,
        num_roots: 1,
        ..base_config(14, 4)
    })
    .expect("benchmark must pass");
    assert!(
        large.runs[0].sim_seconds > small.runs[0].sim_seconds,
        "16x more edges must cost more simulated time"
    );
}

#[test]
fn social_graph_traverses_and_validates() {
    // §8: the partitioning targets any skew-heavy graph, not just
    // R-MAT. Run the whole pipeline on a preferential-attachment graph.
    use sunbfs::core::{run_bfs, validate_parents};
    use sunbfs::net::Cluster;
    use sunbfs::part::build_1p5d;
    use sunbfs::rmat::{generate_social, SocialParams};

    let params = SocialParams {
        num_vertices: 4096,
        edges_per_vertex: 8,
        seed: 11,
    };
    let edges = generate_social(&params);
    let n = params.num_vertices;
    let cluster = Cluster::new(MeshShape::new(3, 3), MachineConfig::new_sunway());
    let outputs = cluster.run(|ctx| {
        let chunk: Vec<sunbfs::common::Edge> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 9 == ctx.rank())
            .map(|(_, e)| *e)
            .collect();
        let part = build_1p5d(ctx, n, &chunk, Thresholds::new(512, 64));
        run_bfs(ctx, &part, 0, &EngineConfig::default()).expect("BFS must terminate")
    });
    let parents: Vec<u64> = outputs
        .iter()
        .flat_map(|o| o.parents.iter().copied())
        .collect();
    validate_parents(n, &edges, 0, &parents).expect("social graph traversal invalid");
    // Preferential-attachment graphs are connected: everything reached.
    assert_eq!(outputs[0].stats.visited_vertices, n);
}

#[test]
fn pick_roots_is_deterministic_and_valid() {
    let params = RmatParams::graph500(12, 7);
    let a = pick_roots(&params, 6).expect("connected roots");
    let b = pick_roots(&params, 6).expect("connected roots");
    assert_eq!(a, b);
    assert_eq!(a.len(), 6);
}

#[test]
fn gteps_improves_with_full_techniques_at_scale() {
    // At a bandwidth-dominated size, the full engine must beat the
    // baseline configuration (the Figure 15 end-to-end claim).
    let mut baseline = base_config(14, 16);
    baseline.validate = false;
    baseline.num_roots = 2;
    baseline.thresholds = Thresholds::new(512, 64);
    baseline.engine = EngineConfig::baseline();
    let mut full = baseline.clone();
    full.engine = EngineConfig::default();
    let b = run_benchmark(&baseline)
        .expect("baseline run")
        .harmonic_mean_gteps();
    let f = run_benchmark(&full)
        .expect("full run")
        .harmonic_mean_gteps();
    assert!(
        f >= b * 0.95,
        "full techniques ({f:.3} GTEPS) should not lose to baseline ({b:.3} GTEPS)"
    );
}
