//! **Extension** — what the paper's BFS-specific optimizations buy over
//! a generic framework.
//!
//! §8 sketches a general-purpose system (the "next-generation ShenTu")
//! on the same partitioning. `sunbfs-framework` implements it; this
//! bench runs BFS both ways on the same partition:
//!
//! * the **framework** path is push-only scatter/combine/apply — what a
//!   naive port of BFS to a Pregel-style system does;
//! * the **engine** path adds everything §4 is about: per-component
//!   push/pull selection, early exit, CG segmenting.
//!
//! The gap is the measured value of the BFS-specific techniques — the
//! reason the paper's record is an ad-hoc kernel, not a framework run.

use sunbfs_common::{MachineConfig, INVALID_VERTEX};
use sunbfs_core::{run_bfs, EngineConfig};
use sunbfs_framework::{run_program, Bfs};
use sunbfs_net::{Cluster, MeshShape};
use sunbfs_part::{build_1p5d, Thresholds};
use sunbfs_rmat::RmatParams;

fn main() {
    let scale = 18;
    let ranks = 16;
    let params = RmatParams::graph500(scale, 42);
    let n = params.num_vertices();
    let root = sunbfs::driver::pick_roots(&params, 1).expect("connected root")[0];
    let th = Thresholds::new(2048, 256);
    println!("=== Extension: generic framework vs the dedicated BFS engine ===");
    println!("    (SCALE {scale}, {ranks} ranks, same 1.5D partition, same root)\n");

    let cluster = Cluster::new(MeshShape::near_square(ranks), MachineConfig::new_sunway());
    let results = cluster.run(|ctx| {
        let chunk = sunbfs_rmat::generate_chunk(&params, ctx.rank() as u64, ranks as u64);
        let part = build_1p5d(ctx, n, &chunk, th);
        drop(chunk);
        let t0 = ctx.now();
        let fw = run_program(ctx, &part, &Bfs { root });
        let t1 = ctx.now();
        let engine =
            run_bfs(ctx, &part, root, &EngineConfig::default()).expect("BFS must terminate");
        let t2 = ctx.now();
        let fw_reached = fw
            .values
            .iter()
            .filter(|v| v.parent != INVALID_VERTEX)
            .count() as u64;
        (
            (t1 - t0).as_secs(),
            (t2 - t1).as_secs(),
            fw_reached,
            engine.stats.traversed_edges,
            engine.stats.visited_vertices,
        )
    });

    let fw_time = results.iter().map(|r| r.0).fold(0.0, f64::max);
    let engine_time = results.iter().map(|r| r.1).fold(0.0, f64::max);
    let fw_reached: u64 = results.iter().map(|r| r.2).sum();
    let (m, visited) = (results[0].3, results[0].4);
    assert_eq!(
        fw_reached, visited,
        "both paths must reach the same vertex set"
    );

    let fw_gteps = m as f64 / fw_time / 1e9;
    let engine_gteps = m as f64 / engine_time / 1e9;
    println!("  path                          sim time     GTEPS");
    println!(
        "  framework (push-only)        {:>9.3} ms  {fw_gteps:>8.3}",
        fw_time * 1e3
    );
    println!(
        "  engine (full §4 techniques)  {:>9.3} ms  {engine_gteps:>8.3}",
        engine_time * 1e3
    );
    println!(
        "\n  dedicated-engine speedup: {:.2}x",
        engine_gteps / fw_gteps
    );
    println!("  (both traversals reach the identical {visited} vertices)");
    assert!(
        engine_gteps > fw_gteps,
        "the paper's BFS-specific techniques must beat the generic push framework"
    );
}
