//! The concurrent TCP transport for [`BfsService`].
//!
//! Topology: one nonblocking accept loop (hard connection limit), one
//! reader thread and one writer thread per connection, and **one**
//! service thread that owns the [`BfsService`] — every connection is
//! multiplexed onto the same deterministic `submit`/`tick`/`drain`
//! clock through a bounded event channel, so admission order (and
//! therefore batch formation) is a single serialized stream no matter
//! how many clients are connected.
//!
//! Robustness contract (`docs/SERVE.md`):
//!
//! * **Slow or dead clients never wedge the engine.** Readers run
//!   under a read deadline (an idle client is disconnected), writers
//!   under a write deadline, and the service thread only ever
//!   `try_send`s replies — a client whose reply buffer is full is
//!   disconnected, its results counted as dropped, and the tick loop
//!   moves on.
//! * **Overload degrades predictably.** Admission rejections carry the
//!   service's typed [`RejectReason`](crate::service::RejectReason)
//!   plus its `retry_after_ticks` hint; a per-connection in-flight cap
//!   (`client_backlog`) keeps one greedy client from monopolizing the
//!   queue; the bounded event channel applies natural TCP backpressure
//!   when readers outrun the service thread.
//! * **Graceful shutdown loses nothing.** A `shutdown` command (or
//!   [`TcpServer::shutdown`]) stops the accept loop, absorbs in-transit
//!   requests for a quiet-window grace period (rejecting new queries
//!   with `shutting_down`), drains every admitted query, flushes every
//!   reply, then sends each surviving connection a final
//!   `{"reply":"shutdown"}` and exits. Every accepted query gets
//!   exactly one reply.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sunbfs_common::{Edge, JsonValue, ToJson};

use crate::proto::{self, ProtoError, Request, MAX_REQUEST_BYTES};
use crate::service::{BfsService, QueryResult, QueryStatus, RejectReason};

/// Events in flight between connections and the service thread. The
/// channel is bounded: readers block when the service falls behind,
/// which stalls their sockets — backpressure by TCP itself.
const EVENT_QUEUE: usize = 1024;

/// Transport knobs. [`ServeConfig`](crate::service::ServeConfig) governs
/// admission and batch formation; this governs everything socket-side.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Hard cap on simultaneously connected clients; connection
    /// attempts beyond it get one `refused` error line and a close.
    pub max_connections: usize,
    /// Per-connection cap on accepted-but-unanswered queries; beyond
    /// it submissions are rejected with reason `client_backlog`.
    pub inflight_cap: usize,
    /// Read deadline per connection: a client idle this long is
    /// considered dead and disconnected.
    pub read_timeout: Duration,
    /// Write deadline per connection: a client that stops consuming
    /// replies for this long is disconnected.
    pub write_timeout: Duration,
    /// Service-thread clock: one [`BfsService::tick`] fires whenever
    /// this long passes without an event.
    pub tick_interval: Duration,
    /// Shutdown quiet window: in-transit events are still absorbed
    /// until the channel has been silent this long.
    pub shutdown_grace: Duration,
    /// Per-connection reply buffer (lines); a full buffer marks the
    /// client slow and disconnects it.
    pub reply_buffer: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            inflight_cap: 128,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            tick_interval: Duration::from_millis(10),
            shutdown_grace: Duration::from_millis(200),
            reply_buffer: 1024,
        }
    }
}

/// What the transport saw over its lifetime, returned by
/// [`TcpServer::join`] next to the service's own
/// [`ServeReport`](crate::report::ServeReport).
#[derive(Clone, Debug, Default)]
pub struct NetSummary {
    /// Connections accepted (readers spawned).
    pub connections: u64,
    /// Connections refused at the `max_connections` cap.
    pub refused_connections: u64,
    /// Request lines received (well-formed or not).
    pub requests: u64,
    /// Lines refused with a typed [`ProtoError`].
    pub protocol_errors: u64,
    /// Queries admitted into the service queue.
    pub accepted: u64,
    /// Queries rejected by the service ([`RejectReason`](crate::service::RejectReason)).
    pub rejected: u64,
    /// Queries rejected at the per-connection in-flight cap.
    pub rejected_backlog: u64,
    /// Queries rejected because shutdown was already draining.
    pub rejected_shutdown: u64,
    /// Queries rejected by the health circuit breaker
    /// (`service_degraded`; also counted in `rejected`).
    pub rejected_degraded: u64,
    /// Results delivered to their connection's reply buffer.
    pub results_delivered: u64,
    /// Results whose connection was gone (or slow) at delivery time.
    pub results_dropped: u64,
    /// Of the routed results, queries that were served.
    pub results_served: u64,
    /// Of the routed results, queries quarantined after recovery.
    pub results_quarantined: u64,
    /// Of the routed results, queries evicted past their deadline.
    pub results_deadline_exceeded: u64,
    /// Queries still pending at shutdown that the final drain flushed.
    pub shutdown_drained: u64,
    /// Health transitions the service recorded over this lifetime.
    pub health_transitions: u64,
    /// Health state label at shutdown (empty when the service thread
    /// panicked before it could report).
    pub final_health: String,
    /// Update batches committed over the wire.
    pub updates_committed: u64,
    /// Edges across every committed wire update.
    pub update_edges: u64,
    /// Update requests refused (draining, out-of-range vertex, or a
    /// failed commit).
    pub updates_rejected: u64,
    /// Session epoch at shutdown (0 = the graph was never mutated).
    pub final_epoch: u64,
}

impl ToJson for NetSummary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("connections", self.connections)
            .field("refused_connections", self.refused_connections)
            .field("requests", self.requests)
            .field("protocol_errors", self.protocol_errors)
            .field("accepted", self.accepted)
            .field("rejected", self.rejected)
            .field("rejected_backlog", self.rejected_backlog)
            .field("rejected_shutdown", self.rejected_shutdown)
            .field("rejected_degraded", self.rejected_degraded)
            .field("results_delivered", self.results_delivered)
            .field("results_dropped", self.results_dropped)
            .field("results_served", self.results_served)
            .field("results_quarantined", self.results_quarantined)
            .field("results_deadline_exceeded", self.results_deadline_exceeded)
            .field("shutdown_drained", self.shutdown_drained)
            .field("health_transitions", self.health_transitions)
            .field("final_health", self.final_health.as_str())
            .field("updates_committed", self.updates_committed)
            .field("update_edges", self.update_edges)
            .field("updates_rejected", self.updates_rejected)
            .field("final_epoch", self.final_epoch)
            .build()
    }
}

/// Everything a connection or the listener can tell the service thread.
enum Event {
    /// A connection was accepted; `tx` is its reply buffer.
    Connected { conn: u64, tx: SyncSender<String> },
    /// One request line arrived (already parsed, maybe into an error).
    Request {
        conn: u64,
        parsed: Result<Request, ProtoError>,
    },
    /// The connection's reader exited (EOF, deadline, socket error).
    Disconnected { conn: u64 },
    /// [`TcpServer::shutdown`] wants a graceful exit.
    Stop,
}

#[derive(Default)]
struct AcceptCounters {
    connections: AtomicU64,
    refused: AtomicU64,
}

/// What [`TcpServer::join`] hands back. A panicked service or accept
/// thread is a *typed* outcome here — never a propagated panic — so
/// the caller can still emit a final shutdown summary line.
pub struct JoinOutcome {
    /// The service, when its thread returned cleanly (`None` when it
    /// panicked — the resident session died with it).
    pub service: Option<BfsService>,
    /// The transport summary. Connection counters are filled in even
    /// when the service thread panicked.
    pub summary: NetSummary,
    /// The service thread's panic payload, when it panicked.
    pub service_join_error: Option<String>,
    /// The accept thread's panic payload, when it panicked.
    pub accept_join_error: Option<String>,
}

impl JoinOutcome {
    /// True when any server thread panicked instead of exiting.
    pub fn panicked(&self) -> bool {
        self.service_join_error.is_some() || self.accept_join_error.is_some()
    }

    /// The clean `(service, summary)` pair, for callers (tests, mostly)
    /// that treat any thread panic as their own failure.
    ///
    /// # Panics
    /// When a server thread panicked.
    pub fn expect_clean(self) -> (BfsService, NetSummary) {
        if let Some(e) = &self.service_join_error {
            panic!("service thread panicked: {e}");
        }
        if let Some(e) = &self.accept_join_error {
            panic!("accept thread panicked: {e}");
        }
        let svc = self.service.expect("clean join always carries the service");
        (svc, self.summary)
    }
}

/// Render a `JoinHandle::join` panic payload as best we can.
fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A running TCP server. Dropping it does **not** stop the threads —
/// call [`TcpServer::shutdown`] then [`TcpServer::join`] (or have a
/// client send `{"cmd":"shutdown"}` and just [`TcpServer::join`]).
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    event_tx: SyncSender<Event>,
    counters: Arc<AcceptCounters>,
    accept_handle: JoinHandle<()>,
    service_handle: JoinHandle<(BfsService, NetSummary)>,
}

impl TcpServer {
    /// The bound address (use port 0 to let the OS pick).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Request a graceful shutdown: stop accepting, drain in-flight,
    /// flush replies. Returns immediately; [`TcpServer::join`] waits.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.event_tx.send(Event::Stop);
    }

    /// Wait for the server to finish (a `shutdown` command from a
    /// client, or a prior [`TcpServer::shutdown`] call) and return the
    /// typed [`JoinOutcome`]. A panicked service or accept thread shows
    /// up as a `*_join_error` string — never as a propagated panic — so
    /// the caller can still report connection counters and a final
    /// shutdown summary.
    pub fn join(self) -> JoinOutcome {
        let TcpServer {
            stop,
            event_tx,
            counters,
            accept_handle,
            service_handle,
            ..
        } = self;
        let (service, mut summary, service_join_error) = match service_handle.join() {
            Ok((svc, summary)) => (Some(svc), summary, None),
            Err(p) => (None, NetSummary::default(), Some(panic_payload(p))),
        };
        stop.store(true, Ordering::SeqCst);
        drop(event_tx);
        let accept_join_error = accept_handle.join().err().map(panic_payload);
        summary.connections = counters.connections.load(Ordering::SeqCst);
        summary.refused_connections = counters.refused.load(Ordering::SeqCst);
        JoinOutcome {
            service,
            summary,
            service_join_error,
            accept_join_error,
        }
    }
}

/// Bind `addr` and serve `service` over it until shutdown.
///
/// # Errors
/// The bind/configure errors of the underlying listener.
pub fn serve(service: BfsService, addr: &str, cfg: NetConfig) -> io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(AcceptCounters::default());
    let (event_tx, event_rx) = mpsc::sync_channel::<Event>(EVENT_QUEUE);

    let accept_handle = {
        let stop = Arc::clone(&stop);
        let counters = Arc::clone(&counters);
        let event_tx = event_tx.clone();
        std::thread::spawn(move || accept_loop(&listener, cfg, &stop, &event_tx, &counters))
    };
    let service_handle = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            ServiceLoop {
                svc: service,
                cfg,
                stop,
                conns: HashMap::new(),
                routes: HashMap::new(),
                draining: false,
                summary: NetSummary::default(),
            }
            .run(&event_rx)
        })
    };
    Ok(TcpServer {
        local_addr,
        stop,
        event_tx,
        counters,
        accept_handle,
        service_handle,
    })
}

fn accept_loop(
    listener: &TcpListener,
    cfg: NetConfig,
    stop: &AtomicBool,
    event_tx: &SyncSender<Event>,
    counters: &AcceptCounters,
) {
    let live = Arc::new(AtomicUsize::new(0));
    let mut next_conn = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                next_conn += 1;
                if live.load(Ordering::SeqCst) >= cfg.max_connections {
                    counters.refused.fetch_add(1, Ordering::SeqCst);
                    refuse(stream, cfg.max_connections);
                    continue;
                }
                counters.connections.fetch_add(1, Ordering::SeqCst);
                live.fetch_add(1, Ordering::SeqCst);
                if spawn_connection(stream, next_conn, cfg, event_tx, &live).is_err() {
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One error line and a close for a connection beyond the cap.
fn refuse(mut stream: TcpStream, max: usize) {
    let line = proto::error_reply(format!("connection limit ({max}) reached"), "refused").render();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.shutdown(Shutdown::Both);
}

/// Set the deadlines and spawn the reader + writer pair.
fn spawn_connection(
    stream: TcpStream,
    conn: u64,
    cfg: NetConfig,
    event_tx: &SyncSender<Event>,
    live: &Arc<AtomicUsize>,
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    let write_half = stream.try_clone()?;
    write_half.set_write_timeout(Some(cfg.write_timeout))?;
    let (reply_tx, reply_rx) = mpsc::sync_channel::<String>(cfg.reply_buffer.max(1));
    event_tx
        .send(Event::Connected { conn, tx: reply_tx })
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "service thread gone"))?;
    std::thread::spawn(move || writer_loop(write_half, &reply_rx));
    let event_tx = event_tx.clone();
    let live = Arc::clone(live);
    std::thread::spawn(move || {
        reader_loop(stream, conn, &event_tx);
        let _ = event_tx.send(Event::Disconnected { conn });
        live.fetch_sub(1, Ordering::SeqCst);
    });
    Ok(())
}

/// Drain the reply buffer onto the socket; on exit (channel closed by
/// the service thread, or the write deadline fired) shut the socket
/// down both ways, which also unblocks this connection's reader.
fn writer_loop(mut stream: TcpStream, rx: &Receiver<String>) {
    for line in rx {
        if stream.write_all(line.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

enum LineRead {
    Line(String),
    Oversized(usize),
    Eof,
    /// Socket error — including the read deadline on an idle client.
    Dead,
}

/// Read one newline-terminated line without ever buffering more than
/// [`MAX_REQUEST_BYTES`] of it — a client streaming an endless line
/// cannot balloon server memory.
fn read_bounded_line(reader: &mut BufReader<TcpStream>) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (done, used) = {
            let available = match reader.fill_buf() {
                Ok(b) => b,
                Err(_) => return LineRead::Dead,
            };
            if available.is_empty() {
                return if buf.is_empty() {
                    LineRead::Eof
                } else {
                    // Final unterminated line before EOF still counts.
                    LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
                };
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&available[..i]);
                    (true, i + 1)
                }
                None => {
                    buf.extend_from_slice(available);
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        if buf.len() > MAX_REQUEST_BYTES {
            return LineRead::Oversized(buf.len());
        }
        if done {
            return LineRead::Line(String::from_utf8_lossy(&buf).into_owned());
        }
    }
}

fn reader_loop(stream: TcpStream, conn: u64, event_tx: &SyncSender<Event>) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_bounded_line(&mut reader) {
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let parsed = proto::parse_request(&line);
                let fatal = parsed.as_ref().err().is_some_and(ProtoError::is_fatal);
                if event_tx.send(Event::Request { conn, parsed }).is_err() || fatal {
                    break;
                }
            }
            LineRead::Oversized(bytes) => {
                // Framing is lost — report the typed error, then drop
                // the connection.
                let _ = event_tx.send(Event::Request {
                    conn,
                    parsed: Err(ProtoError::Oversized {
                        bytes,
                        max: MAX_REQUEST_BYTES,
                    }),
                });
                break;
            }
            LineRead::Eof | LineRead::Dead => break,
        }
    }
}

struct ConnState {
    tx: SyncSender<String>,
    in_flight: usize,
}

/// The single thread that owns the [`BfsService`] and its clock.
struct ServiceLoop {
    svc: BfsService,
    cfg: NetConfig,
    stop: Arc<AtomicBool>,
    conns: HashMap<u64, ConnState>,
    /// QueryId → connection, for routing results back.
    routes: HashMap<u64, u64>,
    draining: bool,
    summary: NetSummary,
}

impl ServiceLoop {
    fn run(mut self, rx: &Receiver<Event>) -> (BfsService, NetSummary) {
        loop {
            match rx.recv_timeout(self.cfg.tick_interval) {
                Ok(Event::Stop) => break,
                Ok(ev) => {
                    if self.handle(ev) {
                        break;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let done = self.svc.tick();
                    self.route(done);
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.shutdown(rx);
        (self.svc, self.summary)
    }

    /// Handle one event; `true` means a client asked for shutdown.
    fn handle(&mut self, ev: Event) -> bool {
        match ev {
            Event::Connected { conn, tx } => {
                self.conns.insert(conn, ConnState { tx, in_flight: 0 });
                false
            }
            Event::Disconnected { conn } => {
                self.conns.remove(&conn);
                false
            }
            Event::Request { conn, parsed } => {
                self.summary.requests += 1;
                match parsed {
                    Ok(req) => self.handle_request(conn, req),
                    Err(e) => {
                        self.summary.protocol_errors += 1;
                        self.send(conn, &proto::proto_error_reply(&e));
                        false
                    }
                }
            }
            Event::Stop => true,
        }
    }

    fn handle_request(&mut self, conn: u64, req: Request) -> bool {
        match req {
            Request::Query {
                root,
                deadline_ticks,
            } => {
                self.submit_root(conn, root, deadline_ticks);
                let done = self.svc.tick();
                self.route(done);
                false
            }
            Request::Batch {
                roots,
                deadline_ticks,
            } => {
                for root in roots {
                    self.submit_root(conn, root, deadline_ticks);
                }
                let done = self.svc.tick();
                self.route(done);
                false
            }
            Request::Update { edges } => {
                self.handle_update(conn, &edges);
                false
            }
            Request::Health => {
                let reply = proto::health_reply(&self.svc.health_snapshot());
                self.send(conn, &reply);
                false
            }
            Request::Stats => {
                let reply = proto::stats_reply(&self.svc.report());
                self.send(conn, &reply);
                false
            }
            Request::Drain => {
                let done = self.svc.drain();
                self.route(done);
                let reply = proto::drained_reply(self.svc.queue_depth());
                self.send(conn, &reply);
                false
            }
            Request::Shutdown => {
                let reply = proto::shutting_down_reply(self.svc.queue_depth());
                self.send(conn, &reply);
                true
            }
            Request::Load(_) => {
                self.send(
                    conn,
                    &proto::error_reply(
                        "the TCP server loads its graph at startup; \"load\" is stdin-only",
                        "bad_request",
                    ),
                );
                false
            }
        }
    }

    /// Commit one wire update batch, or refuse it with the distinct
    /// `update_rejected` reply (never the query-offer `rejected` shape,
    /// which would corrupt client-side offer accounting). Commits run
    /// here on the single service thread, between query batches —
    /// that serialization is the snapshot-consistency guarantee.
    fn handle_update(&mut self, conn: u64, edges: &[(u64, u64)]) {
        if self.draining {
            self.summary.updates_rejected += 1;
            let reply = proto::update_rejected_reply("draining", "server is draining for shutdown");
            self.send(conn, &reply);
            return;
        }
        let n = self.svc.session().num_vertices();
        if let Some(&(u, v)) = edges.iter().find(|&&(u, v)| u >= n || v >= n) {
            self.summary.updates_rejected += 1;
            let detail = format!("edge ({u}, {v}) outside vertex range [0, {n})");
            let reply = proto::update_rejected_reply("invalid_vertex", &detail);
            self.send(conn, &reply);
            return;
        }
        let batch: Vec<Edge> = edges.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        match self.svc.apply_updates(&batch) {
            Ok(epoch) => {
                self.summary.updates_committed += 1;
                self.summary.update_edges += batch.len() as u64;
                let reply =
                    proto::committed_reply(epoch, batch.len(), self.svc.session().compactions());
                self.send(conn, &reply);
            }
            Err(e) => {
                self.summary.updates_rejected += 1;
                let reply = proto::update_rejected_reply("commit_failed", &e.to_string());
                self.send(conn, &reply);
            }
        }
    }

    fn submit_root(&mut self, conn: u64, root: u64, deadline_ticks: Option<u32>) {
        if self.draining {
            self.summary.rejected_shutdown += 1;
            let reply = proto::rejected_reply(
                root,
                "shutting_down",
                "server is draining for shutdown",
                None,
            );
            self.send(conn, &reply);
            return;
        }
        let backlog = self.conns.get(&conn).map_or(0, |c| c.in_flight);
        if backlog >= self.cfg.inflight_cap {
            self.summary.rejected_backlog += 1;
            let detail = format!(
                "{backlog} queries in flight on this connection (cap {})",
                self.cfg.inflight_cap
            );
            let reply = proto::rejected_reply(root, "client_backlog", &detail, Some(1));
            self.send(conn, &reply);
            return;
        }
        match self.svc.submit_with_deadline(root, deadline_ticks) {
            Ok(id) => {
                self.summary.accepted += 1;
                if let Some(c) = self.conns.get_mut(&conn) {
                    c.in_flight += 1;
                }
                self.routes.insert(id.0, conn);
                let reply = proto::accepted_reply(id.0, root, self.svc.queue_depth());
                self.send(conn, &reply);
            }
            Err(reason) => {
                self.summary.rejected += 1;
                if matches!(reason, RejectReason::ServiceDegraded { .. }) {
                    self.summary.rejected_degraded += 1;
                }
                let reply = proto::rejection_reply(root, &reason);
                self.send(conn, &reply);
            }
        }
    }

    /// Deliver completed queries to whoever submitted them.
    fn route(&mut self, results: Vec<QueryResult>) {
        for r in results {
            match r.status {
                QueryStatus::Served => self.summary.results_served += 1,
                QueryStatus::Quarantined(_) => self.summary.results_quarantined += 1,
                QueryStatus::DeadlineExceeded { .. } => self.summary.results_deadline_exceeded += 1,
            }
            let Some(conn) = self.routes.remove(&r.id.0) else {
                self.summary.results_dropped += 1;
                continue;
            };
            if let Some(c) = self.conns.get_mut(&conn) {
                c.in_flight = c.in_flight.saturating_sub(1);
            }
            if self.send(conn, &proto::result_reply(&r)) {
                self.summary.results_delivered += 1;
            } else {
                self.summary.results_dropped += 1;
            }
        }
    }

    /// Non-blocking reply delivery. A full buffer means the writer is
    /// stuck behind its deadline on a slow client — disconnect it
    /// rather than ever blocking the service thread.
    fn send(&mut self, conn: u64, reply: &JsonValue) -> bool {
        let Some(c) = self.conns.get(&conn) else {
            return false;
        };
        match c.tx.try_send(reply.render()) {
            Ok(()) => true,
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.conns.remove(&conn);
                false
            }
        }
    }

    /// Graceful exit: absorb in-transit events until the channel goes
    /// quiet (bounded by a hard deadline), drain every admitted query,
    /// deliver the results, and hand each survivor a final
    /// `{"reply":"shutdown"}` line.
    fn shutdown(&mut self, rx: &Receiver<Event>) {
        self.stop.store(true, Ordering::SeqCst);
        self.draining = true;
        let hard_deadline = Instant::now() + self.cfg.shutdown_grace * 10 + Duration::from_secs(1);
        while Instant::now() < hard_deadline {
            match rx.recv_timeout(self.cfg.shutdown_grace) {
                Ok(Event::Stop) => continue,
                Ok(ev) => {
                    self.handle(ev);
                }
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
            }
        }
        let done = self.svc.drain();
        self.summary.shutdown_drained = done.len() as u64;
        self.route(done);
        let snap = self.svc.health_snapshot();
        self.summary.health_transitions = snap.transitions.len() as u64;
        self.summary.final_health = snap.state.to_string();
        self.summary.final_epoch = self.svc.session().epoch();
        let farewell = proto::shutdown_reply(self.summary.shutdown_drained).render();
        for c in self.conns.values() {
            let _ = c.tx.try_send(farewell.clone());
        }
        // Dropping the reply senders lets every writer flush its buffer
        // and close its socket.
        self.conns.clear();
    }
}
