//! The query service: bounded admission queue, deadline-driven batch
//! formation, batched execution with per-root fallback.
//!
//! State machine (documented in `docs/SERVE.md`):
//!
//! ```text
//!            submit()                tick()/drain()
//! client ──▶ [pending queue] ──▶ [batch of ≤ batch_max] ──▶ execute
//!               │  full?                                      │
//!               ▼                                             ▼
//!          reject (QueueFull)               all ranks Ok ── served
//!                                           rank lost ──── fallback:
//!                                                          per-root
//!                                                          recoverable
//!                                                          runs, then
//!                                                          served or
//!                                                          quarantined
//! ```
//!
//! Backpressure is explicit: a full queue rejects with a typed reason
//! instead of blocking, and the caller decides whether to retry after
//! ticking the service. Batch formation is deterministic — a batch
//! flushes when `batch_max` queries are pending or when the oldest
//! pending query has waited `flush_deadline` ticks — so tests can pin
//! occupancy exactly.
//!
//! Fault containment: a lost rank during a batch degrades *only that
//! batch's riders* — each rider falls back to its own checkpointed
//! single-source run with bounded retries (the PR 2/3 machinery), and
//! the resident [`GraphSession`] is never rebuilt or invalidated.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use sunbfs_common::INVALID_VERTEX;
use sunbfs_core::{validate, BatchOutput, BfsOutput, CheckpointStore, EngineError};

use crate::report::{BatchRecord, QueryRecord, ServeReport};
use crate::session::GraphSession;
use crate::MAX_BATCH;

/// Service knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Pending queries the queue admits before rejecting.
    pub queue_capacity: usize,
    /// Widest batch to form (clamped to the engine's 64-root word).
    pub batch_max: usize,
    /// Ticks the oldest pending query waits before a partial batch
    /// flushes anyway.
    pub flush_deadline: u32,
    /// Retries a fallback (per-root) run gets before quarantine.
    pub max_root_retries: u32,
    /// Also run each batch's roots through the sequential single-source
    /// path and record the comparison (costs one extra SPMD pass per
    /// batch; for benchmarking, not serving).
    pub measure_baseline: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            batch_max: MAX_BATCH,
            flush_deadline: 4,
            max_root_retries: 2,
            measure_baseline: false,
        }
    }
}

/// Ticket for a submitted query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// Typed admission-control rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The pending queue is at capacity — back off and tick.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
        /// Ticks until the queue is expected to have room again: the
        /// next tick when a full batch is already waiting, otherwise
        /// the remaining partial-batch deadline. Clients should wait
        /// this many ticks before resubmitting instead of hot-looping.
        retry_after_ticks: u32,
    },
    /// The root is not a vertex of the resident graph.
    InvalidRoot {
        /// The rejected root.
        root: u64,
        /// Vertices in the resident graph.
        num_vertices: u64,
    },
}

impl RejectReason {
    /// Stable label used in JSON replies and the report.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::QueueFull { .. } => "queue_full",
            RejectReason::InvalidRoot { .. } => "invalid_root",
        }
    }

    /// The backoff hint, when this rejection is retryable at all.
    /// `QueueFull` clears after a flush; an invalid root never will.
    pub fn retry_after_ticks(&self) -> Option<u32> {
        match self {
            RejectReason::QueueFull {
                retry_after_ticks, ..
            } => Some(*retry_after_ticks),
            RejectReason::InvalidRoot { .. } => None,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull {
                capacity,
                retry_after_ticks,
            } => {
                write!(
                    f,
                    "queue full (capacity {capacity}); retry after {retry_after_ticks} tick(s)"
                )
            }
            RejectReason::InvalidRoot { root, num_vertices } => {
                write!(f, "root {root} outside vertex range [0, {num_vertices})")
            }
        }
    }
}

/// Why a query was quarantined instead of served.
#[derive(Clone, Debug)]
pub struct Quarantine {
    /// Stable category label (`engine` / `rank_failure` / `tree`).
    pub label: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Terminal status of a completed query.
#[derive(Clone, Debug)]
pub enum QueryStatus {
    /// The traversal completed; the result carries the parent tree.
    Served,
    /// Every recovery avenue was exhausted; no tree for this query.
    Quarantined(Quarantine),
}

impl QueryStatus {
    /// Stable label used in JSON replies and the report.
    pub fn label(&self) -> &'static str {
        match self {
            QueryStatus::Served => "served",
            QueryStatus::Quarantined(_) => "quarantined",
        }
    }
}

/// A completed query.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The ticket [`BfsService::submit`] returned.
    pub id: QueryId,
    /// The query's root vertex.
    pub root: u64,
    /// The batch this query rode in.
    pub batch_id: u64,
    /// Served or quarantined.
    pub status: QueryStatus,
    /// Handle to the assembled global parent array (`n` entries,
    /// [`INVALID_VERTEX`] where unreached); `None` when quarantined.
    pub parents: Option<Arc<Vec<u64>>>,
    /// Vertices at each BFS depth (index = depth; root at 0).
    pub depth_histogram: Vec<u64>,
    /// Vertices reached.
    pub visited: u64,
    /// The engine's degree-sum estimate of traversed edges (duplicate
    /// generator edges count per entry).
    pub engine_traversed_edges: u64,
    /// Simulated seconds the serving traversal took (the batch's time
    /// for batched riders; the per-root time on the fallback path).
    pub sim_latency_s: f64,
    /// Wall-clock seconds the execution took on the host.
    pub wall_latency_s: f64,
    /// True when this query was served by the per-root recovery path
    /// instead of the batch engine.
    pub via_fallback: bool,
}

struct Pending {
    id: QueryId,
    root: u64,
}

/// The BFS query service over one resident [`GraphSession`].
pub struct BfsService {
    session: GraphSession,
    cfg: ServeConfig,
    pending: VecDeque<Pending>,
    /// Ticks the oldest pending query has waited.
    age: u32,
    next_id: u64,
    next_batch: u64,
    report: ServeReport,
}

impl BfsService {
    /// Wrap a loaded session in service mechanics.
    pub fn new(session: GraphSession, cfg: ServeConfig) -> Self {
        let mut cfg = cfg;
        cfg.batch_max = cfg.batch_max.clamp(1, MAX_BATCH);
        cfg.queue_capacity = cfg.queue_capacity.max(1);
        let report = ServeReport {
            queue_capacity: cfg.queue_capacity,
            batch_max: cfg.batch_max,
            flush_deadline: cfg.flush_deadline,
            build_sim_seconds: session.build_sim_seconds,
            load_sim_seconds: session.load_sim_seconds,
            load_attempts: session.load_attempts,
            ..ServeReport::default()
        };
        BfsService {
            session,
            cfg,
            pending: VecDeque::new(),
            age: 0,
            next_id: 0,
            next_batch: 0,
            report,
        }
    }

    /// The resident session (topology, fault log, partition stats).
    pub fn session(&self) -> &GraphSession {
        &self.session
    }

    /// The knobs this service runs with (after clamping).
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Ticks until the pending queue is expected to shrink: 1 when a
    /// full batch is already waiting (the next tick flushes it),
    /// otherwise the ticks left until the partial-batch deadline fires.
    fn retry_after_ticks(&self) -> u32 {
        if self.pending.len() >= self.cfg.batch_max {
            1
        } else {
            self.cfg.flush_deadline.saturating_sub(self.age).max(1)
        }
    }

    /// Pending (admitted, not yet executed) queries.
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Admit one query, or reject with a typed reason. Admission never
    /// executes anything — traversal happens at [`Self::tick`] /
    /// [`Self::drain`] time.
    pub fn submit(&mut self, root: u64) -> Result<QueryId, RejectReason> {
        let n = self.session.num_vertices();
        if root >= n {
            self.report.rejected_invalid += 1;
            return Err(RejectReason::InvalidRoot {
                root,
                num_vertices: n,
            });
        }
        if self.pending.len() >= self.cfg.queue_capacity {
            self.report.rejected_full += 1;
            return Err(RejectReason::QueueFull {
                capacity: self.cfg.queue_capacity,
                retry_after_ticks: self.retry_after_ticks(),
            });
        }
        let id = QueryId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(Pending { id, root });
        self.report.submitted += 1;
        self.report.max_queue_depth = self.report.max_queue_depth.max(self.pending.len());
        Ok(id)
    }

    /// Advance the batch-formation clock one tick: flush every full
    /// batch, then flush a partial batch if the oldest pending query
    /// has waited `flush_deadline` ticks. Returns queries completed by
    /// this tick.
    pub fn tick(&mut self) -> Vec<QueryResult> {
        let mut out = Vec::new();
        while self.pending.len() >= self.cfg.batch_max {
            out.extend(self.flush_one());
        }
        if self.pending.is_empty() {
            self.age = 0;
            return out;
        }
        self.age += 1;
        if self.age >= self.cfg.flush_deadline {
            out.extend(self.flush_one());
            self.age = 0;
        }
        out
    }

    /// Flush everything pending, regardless of deadlines.
    pub fn drain(&mut self) -> Vec<QueryResult> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            out.extend(self.flush_one());
        }
        self.age = 0;
        out
    }

    /// Snapshot of the service's observability report.
    pub fn report(&self) -> ServeReport {
        let mut r = self.report.clone();
        r.current_queue_depth = self.pending.len();
        r
    }

    /// Form one batch from the queue head and execute it.
    fn flush_one(&mut self) -> Vec<QueryResult> {
        let take = self.pending.len().min(self.cfg.batch_max);
        let batch: Vec<Pending> = self.pending.drain(..take).collect();
        self.execute_batch(batch)
    }

    fn execute_batch(&mut self, batch: Vec<Pending>) -> Vec<QueryResult> {
        let batch_id = self.next_batch;
        self.next_batch += 1;
        let roots: Vec<u64> = batch.iter().map(|p| p.root).collect();
        let wall0 = Instant::now();
        let rank_results = self.session.run_batch(&roots);
        let mut oks = Vec::with_capacity(rank_results.len());
        let mut failures = Vec::new();
        for r in rank_results {
            match r {
                Ok(v) => oks.push(v),
                Err(f) => failures.push(f),
            }
        }
        let mut results;
        let fallback = !failures.is_empty();
        let mut sim_seconds = 0.0f64;
        if !fallback {
            // Engine errors are replicated: either every rank returned
            // the same Err, or every rank has a BatchOutput.
            match oks
                .into_iter()
                .collect::<Result<Vec<BatchOutput>, EngineError>>()
            {
                Ok(outs) => {
                    sim_seconds = outs.iter().fold(0.0, |m, o| m.max(o.stats.sim_seconds));
                    let wall = wall0.elapsed().as_secs_f64();
                    results = self.assemble_batch(&batch, batch_id, outs, sim_seconds, wall);
                }
                Err(e) => {
                    let wall = wall0.elapsed().as_secs_f64();
                    results = batch
                        .iter()
                        .map(|p| {
                            quarantined_result(
                                p,
                                batch_id,
                                Quarantine {
                                    label: "engine",
                                    detail: e.to_string(),
                                },
                                wall,
                                false,
                            )
                        })
                        .collect();
                }
            }
        } else {
            // A rank died mid-batch: the batch's riders fall back to
            // individually recoverable single-source runs. The session
            // itself stays resident — planned faults fire once, so the
            // healed cluster serves the fallback (and later batches).
            results = Vec::with_capacity(batch.len());
            for p in &batch {
                let r = self.serve_fallback(p, batch_id);
                sim_seconds += r.sim_latency_s;
                results.push(r);
            }
        }
        let wall_seconds = wall0.elapsed().as_secs_f64();

        // Optional sequential baseline over the same roots.
        let seq_sim_seconds = if self.cfg.measure_baseline {
            self.measure_sequential(&roots)
        } else {
            None
        };

        let served = results
            .iter()
            .filter(|r| matches!(r.status, QueryStatus::Served))
            .count();
        self.report.served += served as u64;
        self.report.quarantined += (results.len() - served) as u64;
        self.report.batch_sim_seconds += sim_seconds;
        if let Some(s) = seq_sim_seconds {
            *self.report.sequential_sim_seconds.get_or_insert(0.0) += s;
        }
        self.report.occupancy_histogram[crate::report::occupancy_bucket(batch.len())] += 1;
        if fallback {
            self.report.fallback_batches += 1;
        }
        self.report.batches.push(BatchRecord {
            batch_id,
            occupancy: batch.len(),
            sim_seconds,
            wall_seconds,
            fallback,
            served: served as u64,
            quarantined: (results.len() - served) as u64,
            seq_sim_seconds,
        });
        for r in &results {
            self.report.queries.push(QueryRecord {
                id: r.id.0,
                root: r.root,
                batch_id,
                status: r.status.label(),
                sim_latency_s: r.sim_latency_s,
                wall_latency_s: r.wall_latency_s,
                via_fallback: r.via_fallback,
            });
        }
        results
    }

    /// Turn per-rank [`BatchOutput`]s into per-query results.
    fn assemble_batch(
        &self,
        batch: &[Pending],
        batch_id: u64,
        outs: Vec<BatchOutput>,
        sim_seconds: f64,
        wall_seconds: f64,
    ) -> Vec<QueryResult> {
        let n = self.session.num_vertices() as usize;
        let nb = batch.len();
        let dist = self.session.distribution();
        let mut results = Vec::with_capacity(nb);
        for (b, p) in batch.iter().enumerate() {
            let mut parents = vec![INVALID_VERTEX; n];
            let mut histogram: Vec<u64> = Vec::new();
            for (rank, out) in outs.iter().enumerate() {
                let range = dist.range_of(rank);
                for li in 0..(range.end - range.start) as usize {
                    parents[range.start as usize + li] = out.parent_of(li, b);
                    let d = out.depth_of(li, b);
                    if d != sunbfs_core::UNREACHED_DEPTH {
                        let d = d as usize;
                        if histogram.len() <= d {
                            histogram.resize(d + 1, 0);
                        }
                        histogram[d] += 1;
                    }
                }
            }
            results.push(QueryResult {
                id: p.id,
                root: p.root,
                batch_id,
                status: QueryStatus::Served,
                parents: Some(Arc::new(parents)),
                depth_histogram: histogram,
                visited: outs[0].stats.visited[b],
                engine_traversed_edges: outs[0].stats.traversed_edges[b],
                sim_latency_s: sim_seconds,
                wall_latency_s: wall_seconds,
                via_fallback: false,
            });
        }
        results
    }

    /// Per-root recovery: checkpointed single-source runs with bounded
    /// retries, quarantining only when the budget is exhausted.
    fn serve_fallback(&self, p: &Pending, batch_id: u64) -> QueryResult {
        let wall0 = Instant::now();
        let budget = 1 + self.cfg.max_root_retries;
        let store = CheckpointStore::new(self.session.num_ranks());
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let mut oks = Vec::new();
            let mut failures = Vec::new();
            for r in self.session.run_single_recoverable(p.root, &store) {
                match r {
                    Ok(v) => oks.push(v),
                    Err(f) => failures.push(f),
                }
            }
            if failures.is_empty() {
                let wall = wall0.elapsed().as_secs_f64();
                return match oks
                    .into_iter()
                    .collect::<Result<Vec<BfsOutput>, EngineError>>()
                {
                    Ok(outs) => self.assemble_single(p, batch_id, outs, wall),
                    Err(e) => quarantined_result(
                        p,
                        batch_id,
                        Quarantine {
                            label: "engine",
                            detail: e.to_string(),
                        },
                        wall,
                        true,
                    ),
                };
            }
            if attempts >= budget {
                let named: Vec<String> = failures
                    .iter()
                    .filter(|f| f.is_root_cause())
                    .map(|f| f.to_string())
                    .collect();
                return quarantined_result(
                    p,
                    batch_id,
                    Quarantine {
                        label: "rank_failure",
                        detail: format!("{attempts} attempts exhausted: {}", named.join("; ")),
                    },
                    wall0.elapsed().as_secs_f64(),
                    true,
                );
            }
        }
    }

    fn assemble_single(
        &self,
        p: &Pending,
        batch_id: u64,
        outs: Vec<BfsOutput>,
        wall_seconds: f64,
    ) -> QueryResult {
        let sim = outs.iter().fold(0.0f64, |m, o| m.max(o.stats.sim_seconds));
        let parents: Vec<u64> = outs
            .iter()
            .flat_map(|o| o.parents.iter().copied())
            .collect();
        let (histogram, visited) = match validate::levels_from_parents(p.root, &parents) {
            Ok(levels) => {
                let mut h: Vec<u64> = Vec::new();
                let mut visited = 0u64;
                for &lvl in &levels {
                    if lvl == u64::MAX {
                        continue;
                    }
                    visited += 1;
                    let d = lvl as usize;
                    if h.len() <= d {
                        h.resize(d + 1, 0);
                    }
                    h[d] += 1;
                }
                (h, visited)
            }
            Err(e) => {
                return quarantined_result(
                    p,
                    batch_id,
                    Quarantine {
                        label: "tree",
                        detail: format!("{e:?}"),
                    },
                    wall_seconds,
                    true,
                );
            }
        };
        QueryResult {
            id: p.id,
            root: p.root,
            batch_id,
            status: QueryStatus::Served,
            parents: Some(Arc::new(parents)),
            depth_histogram: histogram,
            visited,
            engine_traversed_edges: outs[0].stats.traversed_edges,
            sim_latency_s: sim,
            wall_latency_s: wall_seconds,
            via_fallback: true,
        }
    }

    /// The sequential baseline: the same roots, one at a time through
    /// the single-source engine in one SPMD pass (the driver's per-root
    /// loop shape). Returns the summed per-root simulated time, or
    /// `None` if a rank was lost mid-measurement.
    fn measure_sequential(&mut self, roots: &[u64]) -> Option<f64> {
        let mut per_root_max = vec![0.0f64; roots.len()];
        for rank_result in self.session.run_seq_loop(roots) {
            match rank_result {
                Err(_) => return None,
                Ok(outs) => {
                    for (ri, out) in outs.into_iter().enumerate() {
                        match out {
                            Ok(o) => per_root_max[ri] = per_root_max[ri].max(o.stats.sim_seconds),
                            Err(_) => return None,
                        }
                    }
                }
            }
        }
        Some(per_root_max.iter().sum())
    }
}

fn quarantined_result(
    p: &Pending,
    batch_id: u64,
    q: Quarantine,
    wall_seconds: f64,
    via_fallback: bool,
) -> QueryResult {
    QueryResult {
        id: p.id,
        root: p.root,
        batch_id,
        status: QueryStatus::Quarantined(q),
        parents: None,
        depth_histogram: Vec::new(),
        visited: 0,
        engine_traversed_edges: 0,
        sim_latency_s: 0.0,
        wall_latency_s: wall_seconds,
        via_fallback,
    }
}
