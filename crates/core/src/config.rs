//! Engine configuration and direction heuristics (§4.2).
//!
//! Direction-optimizing BFS switches between top-down (*push*) and
//! bottom-up (*pull*) per iteration. The paper refines this to
//! **sub-iteration direction optimization**: each of the six subgraph
//! components chooses its direction independently, with two heuristics:
//!
//! * node-local components (EH2EH, E2L, L2E) look only at the *source
//!   active ratio* — pull workload cannot be estimated from destination
//!   counts because early exit truncates it,
//! * node-crossing components (H2L, L2H, L2L) compare the active-source
//!   ratio against the unvisited-destination ratio, which "directly
//!   reflect the number of messages required to communicate".
//!
//! Two *heuristic families* drive those decisions (see
//! [`DirectionHeuristic`] and `docs/KERNELS.md`):
//!
//! * **fixed** — the original count-ratio thresholds (`alpha_local` /
//!   `beta_crossing`), kept byte-identical for reproducibility;
//! * **measured** — the Beamer/Buluç direction-optimizing heuristic on
//!   *measured degree masses*: switch to pull when the frontier's edge
//!   mass `m_f` exceeds the unexplored edge mass `m_u / α`, switch back
//!   to push when the frontier shrinks below `n / β` vertices, with
//!   hysteresis (the previous direction breaks ties). The masses come
//!   from the degree sums the engine already tracks per sub-iteration.

/// Traversal direction of one sub-iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Direction {
    /// Top-down: scan active sources, write destinations.
    #[default]
    Push,
    /// Bottom-up: scan unvisited destinations, probe sources; early
    /// exit on first hit.
    Pull,
}

/// The six subgraph components in their §4.2 execution order
/// (higher-degree source/destination first).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// Hub ↔ hub core subgraph (2D-partitioned).
    Eh2Eh,
    /// E → L.
    E2L,
    /// L → E.
    L2E,
    /// H → L.
    H2L,
    /// L → H.
    L2H,
    /// L → L.
    L2L,
}

impl Component {
    /// All components in execution order.
    pub const ALL: [Component; 6] = [
        Component::Eh2Eh,
        Component::E2L,
        Component::L2E,
        Component::H2L,
        Component::L2H,
        Component::L2L,
    ];

    /// Short name used in time-accounting categories.
    pub fn name(self) -> &'static str {
        match self {
            Component::Eh2Eh => "EH2EH",
            Component::E2L => "E2L",
            Component::L2E => "L2E",
            Component::H2L => "H2L",
            Component::L2H => "L2H",
            Component::L2L => "L2L",
        }
    }

    /// True for components whose edges never cross ranks at traversal
    /// time (their direction heuristic uses the source ratio only).
    pub fn is_node_local(self) -> bool {
        matches!(self, Component::Eh2Eh | Component::E2L | Component::L2E)
    }
}

/// Which family of push/pull decision rules the engine runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DirectionHeuristic {
    /// Fixed count-ratio thresholds (`alpha_local` / `beta_crossing`):
    /// reproduces the pre-measured direction schedule exactly, byte for
    /// byte — collectives, payloads, parents, and depths included.
    Fixed,
    /// Measured-degree heuristics with hysteresis ([`choose_measured`]):
    /// frontier edge mass vs. unexplored edge mass per vertex class,
    /// using `alpha_measured` / `beta_measured`. The default.
    #[default]
    Measured,
}

impl DirectionHeuristic {
    /// Stable lowercase name (JSON reports, `SUNBFS_DIRECTION`).
    pub fn name(self) -> &'static str {
        match self {
            DirectionHeuristic::Fixed => "fixed",
            DirectionHeuristic::Measured => "measured",
        }
    }

    /// Parse the `SUNBFS_DIRECTION` spelling; `None` on anything else.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fixed" => Some(DirectionHeuristic::Fixed),
            "measured" => Some(DirectionHeuristic::Measured),
            _ => None,
        }
    }
}

/// Engine configuration. Defaults enable every technique of the paper;
/// the ablation benches (Figure 15) toggle them off one at a time.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Source-active-ratio threshold above which node-local components
    /// switch to pull (fixed heuristic).
    pub alpha_local: f64,
    /// Crossing components pull when
    /// `unvisited_dst_ratio < beta * active_src_ratio` (fixed heuristic).
    pub beta_crossing: f64,
    /// Per-component direction selection (§4.2). When off, one global
    /// direction per iteration (vanilla direction optimization — the
    /// Figure 15 baseline).
    pub sub_iteration: bool,
    /// Global active-ratio threshold used by the vanilla mode.
    pub vanilla_alpha: f64,
    /// CG-aware core-subgraph segmenting for the EH2EH pull (§4.3).
    /// When off, probes cost GLD main-memory latency instead of RMA.
    pub segmenting: bool,
    /// Which decision family is in force ([`DirectionHeuristic`]).
    pub heuristic: DirectionHeuristic,
    /// Measured heuristic: enter pull when
    /// `frontier_edge_mass > unexplored_edge_mass / alpha_measured`
    /// (Beamer's α; default 3 — tuned on the simulated Sunway cost
    /// model, where collectives dominate and later pull entry wins;
    /// Beamer's shared-memory value is 14).
    pub alpha_measured: f64,
    /// Measured heuristic: return to push when the class frontier holds
    /// fewer than `total / beta_measured` vertices (Beamer's β;
    /// default 6 — tuned like `alpha_measured`, Beamer's value is 24).
    pub beta_measured: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            alpha_local: 0.03,
            beta_crossing: 1.0,
            sub_iteration: true,
            vanilla_alpha: 0.03,
            segmenting: true,
            heuristic: DirectionHeuristic::default(),
            alpha_measured: 3.0,
            beta_measured: 6.0,
        }
    }
}

impl EngineConfig {
    /// The Figure 15 baseline: vanilla direction optimization, no
    /// segmenting.
    pub fn baseline() -> Self {
        EngineConfig {
            sub_iteration: false,
            segmenting: false,
            ..Default::default()
        }
    }

    /// Baseline plus sub-iteration direction optimization (Figure 15
    /// middle bar).
    pub fn with_sub_iteration() -> Self {
        EngineConfig {
            segmenting: false,
            ..Default::default()
        }
    }
}

/// Direction for a node-local component from its source activity.
pub fn choose_local(cfg: &EngineConfig, active_src: u64, total_src: u64) -> Direction {
    if total_src == 0 {
        return Direction::Push;
    }
    if active_src as f64 / total_src as f64 > cfg.alpha_local {
        Direction::Pull
    } else {
        Direction::Push
    }
}

/// Direction for a node-crossing component by comparing the expected
/// message counts of the two directions.
pub fn choose_crossing(
    cfg: &EngineConfig,
    active_src: u64,
    total_src: u64,
    unvisited_dst: u64,
    total_dst: u64,
) -> Direction {
    if total_src == 0 || total_dst == 0 {
        return Direction::Push;
    }
    let active_ratio = active_src as f64 / total_src as f64;
    let unvisited_ratio = unvisited_dst as f64 / total_dst as f64;
    if unvisited_ratio < cfg.beta_crossing * active_ratio {
        Direction::Pull
    } else {
        Direction::Push
    }
}

/// Measured-degree direction decision with hysteresis (the
/// direction-optimizing BFS rule of Beamer et al., per vertex class):
///
/// * in **push**, switch to pull when the frontier's measured edge mass
///   exceeds the unexplored edge mass scaled by α:
///   `m_f > m_u / alpha_measured`;
/// * in **pull**, return to push when the class frontier has shrunk
///   below `total / beta_measured` vertices.
///
/// `frontier_edges` / `unexplored_edges` are global degree-mass sums
/// for the deciding class (`m_f` / `m_u`); `active` / `total` are its
/// frontier and class vertex counts. An empty class or empty frontier
/// always pushes (the scan is a no-op either way).
pub fn choose_measured(
    cfg: &EngineConfig,
    prev: Direction,
    frontier_edges: u64,
    unexplored_edges: u64,
    active: u64,
    total: u64,
) -> Direction {
    if total == 0 || active == 0 {
        return Direction::Push;
    }
    match prev {
        Direction::Push => {
            if frontier_edges as f64 * cfg.alpha_measured > unexplored_edges as f64 {
                Direction::Pull
            } else {
                Direction::Push
            }
        }
        Direction::Pull => {
            if (active as f64) < total as f64 / cfg.beta_measured {
                Direction::Push
            } else {
                Direction::Pull
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_ordered_by_degree_level() {
        assert_eq!(Component::ALL[0], Component::Eh2Eh);
        assert_eq!(Component::ALL[5], Component::L2L);
        assert!(Component::Eh2Eh.is_node_local());
        assert!(Component::L2E.is_node_local());
        assert!(!Component::H2L.is_node_local());
        assert!(!Component::L2L.is_node_local());
    }

    #[test]
    fn local_heuristic_switches_on_density() {
        let cfg = EngineConfig::default();
        assert_eq!(choose_local(&cfg, 1, 1000), Direction::Push);
        assert_eq!(choose_local(&cfg, 500, 1000), Direction::Pull);
        assert_eq!(choose_local(&cfg, 0, 0), Direction::Push);
    }

    #[test]
    fn crossing_heuristic_compares_ratios() {
        let cfg = EngineConfig::default();
        // Sparse frontier, nearly everything unvisited → push.
        assert_eq!(choose_crossing(&cfg, 10, 1000, 990, 1000), Direction::Push);
        // Dense frontier, few unvisited → pull.
        assert_eq!(choose_crossing(&cfg, 600, 1000, 50, 1000), Direction::Pull);
        // Empty classes never pull.
        assert_eq!(choose_crossing(&cfg, 0, 0, 5, 10), Direction::Push);
    }

    #[test]
    fn measured_heuristic_enters_and_exits_pull_with_hysteresis() {
        let cfg = EngineConfig::default();
        // Push holds while the frontier mass is small relative to m_u/α.
        assert_eq!(
            choose_measured(&cfg, Direction::Push, 10, 10_000, 5, 1000),
            Direction::Push
        );
        // m_f·α > m_u → enter pull.
        assert_eq!(
            choose_measured(&cfg, Direction::Push, 4000, 10_000, 200, 1000),
            Direction::Pull
        );
        // In pull, a still-large frontier stays pull even if masses
        // dropped (hysteresis: the push rule is not re-evaluated).
        assert_eq!(
            choose_measured(&cfg, Direction::Pull, 1, 10_000, 500, 1000),
            Direction::Pull
        );
        // Frontier below n/β → back to push.
        assert_eq!(
            choose_measured(&cfg, Direction::Pull, 1000, 10, 10, 1000),
            Direction::Push
        );
        // Empty class or empty frontier never pulls.
        assert_eq!(
            choose_measured(&cfg, Direction::Pull, 9, 9, 5, 0),
            Direction::Push
        );
        assert_eq!(
            choose_measured(&cfg, Direction::Push, 9, 0, 0, 100),
            Direction::Push
        );
    }

    #[test]
    fn heuristic_names_and_parse_round_trip() {
        for h in [DirectionHeuristic::Fixed, DirectionHeuristic::Measured] {
            assert_eq!(DirectionHeuristic::parse(h.name()), Some(h));
        }
        assert_eq!(DirectionHeuristic::parse("auto"), None);
        assert_eq!(DirectionHeuristic::parse("Fixed"), None, "strict spelling");
        assert_eq!(
            EngineConfig::default().heuristic,
            DirectionHeuristic::Measured
        );
    }

    #[test]
    fn ablation_constructors() {
        let b = EngineConfig::baseline();
        assert!(!b.sub_iteration && !b.segmenting);
        let s = EngineConfig::with_sub_iteration();
        assert!(s.sub_iteration && !s.segmenting);
        let full = EngineConfig::default();
        assert!(full.sub_iteration && full.segmenting);
    }
}
