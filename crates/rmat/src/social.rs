//! Preferential-attachment synthetic graphs.
//!
//! §8 of the paper argues the 1.5D partitioning is "designed for any
//! graph with extremely skewed degree distribution, which is commonly
//! found in social networks, web graphs, etc.". R-MAT is one such
//! family; this module provides a second, structurally different one —
//! a Barabási–Albert-style preferential-attachment process — so tests
//! and examples can check that nothing in the pipeline is secretly
//! R-MAT-specific.
//!
//! The generator is sequential by nature (attachment depends on the
//! running degree state), so unlike R-MAT it is not chunk-splittable;
//! callers generate the full list once and let ranks take slices. At
//! the laptop scales this repository runs, that is irrelevant.

use sunbfs_common::{Edge, SplitMix64};

/// Configuration of the preferential-attachment generator.
#[derive(Clone, Copy, Debug)]
pub struct SocialParams {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Edges each newcomer attaches with (the `m` of Barabási–Albert).
    pub edges_per_vertex: u32,
    /// Seed.
    pub seed: u64,
}

/// Generate a preferential-attachment multigraph: vertex `t` connects
/// `edges_per_vertex` times to targets drawn proportionally to current
/// degree (implemented by sampling the endpoint list, the classic
/// trick).
pub fn generate_social(params: &SocialParams) -> Vec<Edge> {
    let n = params.num_vertices;
    let m = params.edges_per_vertex.max(1) as u64;
    assert!(n >= 2, "need at least two vertices");
    let mut rng = SplitMix64::new(params.seed ^ 0x50c1a1);
    let mut edges: Vec<Edge> = Vec::with_capacity((n * m) as usize);
    // Endpoint pool: every occurrence is one unit of degree.
    let mut pool: Vec<u64> = vec![0, 1];
    edges.push(Edge::new(0, 1));
    for t in 2..n {
        for _ in 0..m {
            let target = pool[rng.next_below(pool.len() as u64) as usize];
            edges.push(Edge::new(t, target));
            pool.push(target);
            pool.push(t);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::degrees;

    fn params(n: u64) -> SocialParams {
        SocialParams {
            num_vertices: n,
            edges_per_vertex: 4,
            seed: 7,
        }
    }

    #[test]
    fn edge_count_matches_process() {
        let p = params(1000);
        let edges = generate_social(&p);
        assert_eq!(edges.len() as u64, 1 + (p.num_vertices - 2) * 4);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_social(&params(500)), generate_social(&params(500)));
    }

    #[test]
    fn labels_in_range_and_connected() {
        let p = params(2000);
        let edges = generate_social(&p);
        let deg = degrees(p.num_vertices, &edges);
        assert!(edges
            .iter()
            .all(|e| e.u < p.num_vertices && e.v < p.num_vertices));
        // Preferential attachment yields one connected component: every
        // vertex has degree ≥ 1.
        assert!(
            deg.iter().all(|&d| d > 0),
            "PA graphs have no isolated vertices"
        );
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let p = params(5000);
        let deg = degrees(p.num_vertices, &generate_social(&p));
        let max = *deg.iter().max().unwrap() as f64;
        let mean = deg.iter().map(|&d| d as f64).sum::<f64>() / deg.len() as f64;
        assert!(
            max / mean > 20.0,
            "max/mean {} too flat for preferential attachment",
            max / mean
        );
        // Early vertices dominate (the rich get richer).
        let early: u64 = deg[..50].iter().map(|&d| d as u64).sum();
        let late: u64 = deg[deg.len() - 50..].iter().map(|&d| d as u64).sum();
        assert!(early > late * 5, "early {early} vs late {late}");
    }
}
