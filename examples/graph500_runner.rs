//! Graph 500 benchmark runner with command-line knobs.
//!
//! Mirrors the reporting style of the official benchmark: per-root TEPS
//! plus the harmonic mean, with the paper's technique toggles exposed.
//!
//! ```text
//! cargo run --release --example graph500_runner -- \
//!     [scale] [ranks] [e_threshold] [h_threshold] [num_roots] \
//!     [--json [path]] [--seed <u64>] [--batch [--baseline]] \
//!     [--save-graph <path>] [--load-graph <path>]
//!
//! # defaults:         14      16          256          64        8
//! # --json without a path writes BENCH_<scale>_<rows>x<cols>.json
//! # --seed sets the R-MAT generator seed (default 42)
//! # --batch routes the roots through the multi-source serve path;
//! # --baseline additionally runs the sequential per-root loop on the
//! #   same resident session and reports the roots/sec speedup
//! # --save-graph writes the built partition to a sunbfs-store file
//! #   (docs/STORE.md); --load-graph opens one instead of rebuilding
//! #   (building and saving it first when the file doesn't exist yet)
//! # disable a technique:
//! SUNBFS_NO_SUBITER=1 SUNBFS_NO_SEGMENT=1 cargo run --release \
//!     --example graph500_runner -- 14 16
//! # pick the direction-heuristic family (docs/KERNELS.md); anything
//! # other than fixed|measured is a refusal (exit code 2):
//! SUNBFS_DIRECTION=fixed cargo run --release \
//!     --example graph500_runner -- 14 16
//! ```
//!
//! Unknown `--flags` are an error (exit code 2), not a warning: a typo
//! like `--jsno` silently producing a default run is worse than a
//! refusal.

use sunbfs::core::{DirectionHeuristic, EngineConfig};
use sunbfs::driver::{run_benchmark, FaultSpec, RunConfig};
use sunbfs::metrics;
use sunbfs::net::MeshShape;
use sunbfs::part::Thresholds;

/// Parsed command line: positional knobs plus flags.
struct Args {
    positional: Vec<u64>,
    /// `--json [path]`; `Some(None)` means "default filename".
    json: Option<Option<String>>,
    seed: u64,
    batch: bool,
    baseline: bool,
    save_graph: Option<String>,
    load_graph: Option<String>,
}

/// Split flags out of the argument list, leaving the positional knobs
/// in place. Unknown flags (or a malformed `--seed`) terminate the
/// process with exit code 2.
fn parse_args() -> Args {
    let mut parsed = Args {
        positional: Vec::new(),
        json: None,
        seed: 42,
        batch: false,
        baseline: false,
        save_graph: None,
        load_graph: None,
    };
    let path_flag = |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>,
                     flag: &str| {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} requires a path");
            std::process::exit(2);
        })
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        if a == "--json" {
            parsed.json = Some(args.next_if(|p| !p.starts_with("--")));
        } else if a == "--seed" {
            let value = args.next().unwrap_or_default();
            parsed.seed = value.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("error: --seed requires a u64 value, got {value:?}");
                std::process::exit(2);
            });
        } else if a == "--batch" {
            parsed.batch = true;
        } else if a == "--baseline" {
            parsed.baseline = true;
        } else if a == "--save-graph" {
            parsed.save_graph = Some(path_flag(&mut args, "--save-graph"));
        } else if a == "--load-graph" {
            parsed.load_graph = Some(path_flag(&mut args, "--load-graph"));
        } else if a.starts_with("--") {
            eprintln!("error: unknown flag {a}");
            eprintln!(
                "usage: graph500_runner [scale] [ranks] [e_threshold] [h_threshold] \
                 [num_roots] [--json [path]] [--seed <u64>] [--batch [--baseline]] \
                 [--save-graph <path>] [--load-graph <path>]"
            );
            std::process::exit(2);
        } else if let Ok(v) = a.parse::<u64>() {
            parsed.positional.push(v);
        } else {
            eprintln!("error: unrecognized argument {a:?} (positional knobs are integers)");
            std::process::exit(2);
        }
    }
    parsed
}

fn main() {
    let Args {
        positional,
        json,
        seed,
        batch,
        baseline,
        save_graph,
        load_graph,
    } = parse_args();
    let arg = |n: usize, default: u64| positional.get(n).copied().unwrap_or(default);
    let scale = arg(0, 14) as u32;
    let ranks = arg(1, 16) as usize;
    let e_th = arg(2, 256) as u32;
    let h_th = arg(3, 64) as u32;
    let num_roots = arg(4, 8) as usize;

    let mut engine = EngineConfig::default();
    if std::env::var_os("SUNBFS_NO_SUBITER").is_some() {
        engine.sub_iteration = false;
    }
    if std::env::var_os("SUNBFS_NO_SEGMENT").is_some() {
        engine.segmenting = false;
    }
    if let Some(value) = std::env::var_os("SUNBFS_DIRECTION") {
        let value = value.to_string_lossy().into_owned();
        engine.heuristic = DirectionHeuristic::parse(&value).unwrap_or_else(|| {
            eprintln!("error: SUNBFS_DIRECTION must be \"fixed\" or \"measured\", got {value:?}");
            std::process::exit(2);
        });
    }

    let config = RunConfig {
        scale,
        edge_factor: 16,
        mesh: MeshShape::near_square(ranks),
        thresholds: Thresholds::new(e_th, h_th),
        engine,
        machine: sunbfs::common::MachineConfig::new_sunway(),
        seed,
        num_roots,
        // Full-edge-list validation is O(edges) on the driver; keep it
        // for the scales a laptop handles comfortably.
        validate: scale <= 18,
        // Injection comes from SUNBFS_FAULT_PLAN when set (see
        // docs/FAULTS.md); no seeded campaign by default.
        faults: FaultSpec::NONE,
        max_root_retries: 2,
        serve_batch: batch,
        serve_baseline: baseline,
        save_graph,
        load_graph,
    };

    println!("graph500 runner");
    println!("  SCALE:          {scale} ({} vertices)", 1u64 << scale);
    println!("  edges:          {}", 16u64 << scale);
    println!(
        "  mesh:           {}x{} = {} ranks",
        config.mesh.rows, config.mesh.cols, ranks
    );
    println!("  thresholds:     E>={e_th}  H>={h_th}");
    println!(
        "  techniques:     sub-iteration={} segmenting={}",
        engine.sub_iteration, engine.segmenting
    );
    println!("  roots:          {num_roots}");
    println!("  seed:           {seed}");
    if batch {
        println!(
            "  mode:           batched serve path{}",
            if baseline {
                " (+ sequential baseline)"
            } else {
                ""
            }
        );
    }
    if let Some(path) = &config.load_graph {
        println!("  load graph:     {path}");
    }
    if let Some(path) = &config.save_graph {
        println!("  save graph:     {path}");
    }

    let wall = std::time::Instant::now();
    let report = match run_benchmark(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("benchmark failed: {e}");
            std::process::exit(1);
        }
    };
    let wall = wall.elapsed();

    println!("\nper-root results:");
    for run in &report.runs {
        println!(
            "  root {:>8}: {:>7} iters, {:>9} visited, {:>11} edges, {:>9.3} ms sim, {:>8.3} GTEPS",
            run.root,
            run.iterations.len(),
            run.visited_vertices,
            run.traversed_edges,
            run.sim_seconds * 1e3,
            run.gteps,
        );
    }
    if let Some(path) = json {
        let path = path.unwrap_or_else(|| metrics::default_report_path(scale, config.mesh));
        match metrics::write_report(&report, std::path::Path::new(&path)) {
            Ok(()) => println!("\nJSON report:          {path}"),
            Err(e) => eprintln!("\ncould not write {path}: {e}"),
        }
    }

    if report.faults.degraded() || !report.faults.injected.is_empty() {
        println!(
            "\nfaults:               {} injected, {} retries, degraded={}",
            report.faults.injected.len(),
            report.faults.total_retries,
            report.faults.degraded()
        );
        for q in &report.faults.quarantined {
            println!(
                "  quarantined root {:>8}: {} ({})",
                q.root,
                q.reason.label(),
                q.reason.detail()
            );
        }
    }
    if report.recovery.retransmits() > 0 || report.recovery.iterations_salvaged > 0 {
        println!(
            "recovery:             {} retransmits, {} checkpoints, {} iterations salvaged",
            report.recovery.retransmits(),
            report.recovery.checkpoints_taken,
            report.recovery.iterations_salvaged
        );
    }

    if let Some(serve) = &report.serve {
        println!(
            "\nserve:                {} served / {} quarantined over {} batches, {:.3} ms sim",
            serve.served,
            serve.quarantined,
            serve.batches.len(),
            serve.batch_sim_seconds * 1e3,
        );
        println!(
            "batched roots/sec:    {:.1} (simulated)",
            serve.batch_roots_per_sec()
        );
        if let (Some(seq), Some(speedup)) = (serve.sequential_roots_per_sec(), serve.speedup()) {
            println!("sequential roots/sec: {seq:.1} (simulated)");
            println!("batch speedup:        {speedup:.2}x");
        }
    }

    if let Some(store) = &report.store {
        println!(
            "\nstore:                {} ({}, {} pages, {} bytes)",
            store.path,
            if store.opened { "opened" } else { "built" },
            store.pages,
            store.file_bytes,
        );
        if let Some(warm) = store.warm_open_wall_seconds {
            println!("warm open wall:       {:.3} ms", warm * 1e3);
        }
        if let Some(cold) = store.cold_build_wall_seconds {
            println!("cold build wall:      {:.3} ms", cold * 1e3);
        }
    }

    println!("\nvalidated:            {}", report.validated);
    println!("mean GTEPS:           {:.3}", report.mean_gteps());
    println!("harmonic-mean GTEPS:  {:.3}", report.harmonic_mean_gteps());
    println!("driver wall time:     {:.2?}", wall);

    // Iteration-direction trace of the first root — the sub-iteration
    // optimization at work.
    if let Some(run) = report.runs.first() {
        println!("\ndirection trace (root {}):", run.root);
        println!("  iter  EH2EH  E2L   L2E   H2L   L2H   L2L    active(E/H/L)");
        for it in &run.iterations {
            let d: Vec<&str> = it
                .directions
                .iter()
                .map(|d| match d {
                    sunbfs::core::Direction::Push => "push",
                    sunbfs::core::Direction::Pull => "PULL",
                })
                .collect();
            println!(
                "  {:>4}  {:<5}  {:<4}  {:<4}  {:<4}  {:<4}  {:<4}   {}/{}/{}",
                it.iter, d[0], d[1], d[2], d[3], d[4], d[5], it.active_e, it.active_h, it.active_l
            );
        }
    }
}
