//! Deterministic, allocation-free random number generation.
//!
//! The R-MAT generator and the synthetic kernel workloads need billions
//! of cheap random draws that must be reproducible across runs and
//! splittable across simulated ranks. SplitMix64 (Steele et al., the
//! stream-seeding function of the xoshiro family) is the standard choice:
//! one multiply-xorshift round per draw, full 64-bit period, and any seed
//! — including sequential ones — produces a well-mixed stream.

/// SplitMix64 pseudo-random generator.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Sequential seeds give independent streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`. Uses the widening-multiply trick
    /// (Lemire); bias is bounded by `bound / 2^64` which is negligible
    /// for all our bounds.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Derive an independent child generator; `tag` distinguishes
    /// siblings (rank id, chunk id, ...).
    #[inline]
    pub fn split(&self, tag: u64) -> SplitMix64 {
        // Re-mix through one SplitMix64 round so (seed, tag) pairs do not
        // collide with sequential seeding of the parent.
        let mut child = SplitMix64::new(self.state ^ tag.wrapping_mul(0xA24B_AED4_963E_E407));
        child.next_u64();
        child
    }
}

/// Bijective vertex-label scrambler.
///
/// The Graph 500 specification requires the generated R-MAT vertex labels
/// to be permuted so degree is uncorrelated with label value. A fixed
/// random permutation table would cost `8 * 2^scale` bytes; instead we
/// use an invertible hash on the `scale`-bit label space (two rounds of a
/// Feistel-free multiply/xor permutation modulo `2^scale`), the same
/// device used by in-memory Graph 500 generators.
#[derive(Clone, Copy, Debug)]
pub struct LabelScrambler {
    bits: u32,
    key0: u64,
    key1: u64,
}

impl LabelScrambler {
    /// Scrambler for a `bits`-bit label space seeded by `seed`.
    pub fn new(bits: u32, seed: u64) -> Self {
        assert!((1..=63).contains(&bits), "label space must be 1..=63 bits");
        let mut rng = SplitMix64::new(seed ^ 0x05ca_1ab1_e0dd_ba11);
        // Multiplicative keys must be odd to be invertible mod 2^bits.
        let key0 = rng.next_u64() | 1;
        let key1 = rng.next_u64() | 1;
        LabelScrambler { bits, key0, key1 }
    }

    #[inline]
    fn mask(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Permute a label (must be `< 2^bits`).
    #[inline]
    pub fn scramble(&self, x: u64) -> u64 {
        debug_assert!(x <= self.mask());
        let m = self.mask();
        let half = self.bits / 2;
        let mut v = x;
        v = v.wrapping_mul(self.key0) & m;
        v ^= v >> (half.max(1));
        v = v.wrapping_mul(self.key1) & m;
        v ^ (v >> (half.max(1))) & m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for bound in [1u64, 2, 3, 17, 1000] {
            for _ in 0..1000 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_roughly_uniform() {
        let mut r = SplitMix64::new(123);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn split_streams_are_independent() {
        let root = SplitMix64::new(5);
        let mut a = root.split(0);
        let mut b = root.split(1);
        let overlap = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn scrambler_is_bijective_small_space() {
        for bits in [1u32, 4, 10] {
            let s = LabelScrambler::new(bits, 99);
            let n = 1u64 << bits;
            let image: HashSet<u64> = (0..n).map(|x| s.scramble(x)).collect();
            assert_eq!(image.len() as u64, n, "not a bijection at {bits} bits");
            assert!(image.iter().all(|&y| y < n), "image escaped label space");
        }
    }

    #[test]
    fn scrambler_actually_shuffles() {
        let s = LabelScrambler::new(16, 3);
        let fixed = (0..1u64 << 16).filter(|&x| s.scramble(x) == x).count();
        // A random permutation has ~1 expected fixed point; allow slack.
        assert!(fixed < 64, "{fixed} fixed points — barely a permutation");
    }
}
