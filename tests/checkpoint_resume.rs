//! Iteration-level checkpoint/resume: codec robustness and the
//! end-to-end guarantee that a traversal killed at *any* iteration
//! boundary resumes from its last verified checkpoint and produces a
//! parent array byte-identical to the fault-free run.

use proptest::prelude::*;
use sunbfs::common::{Bitmap, MachineConfig};
use sunbfs::core::{
    run_bfs_recoverable, CheckpointState, CheckpointStore, Direction, EngineConfig,
};
use sunbfs::net::{Cluster, FaultEvent, FaultKind, FaultPlan, MeshShape, RankFailure};
use sunbfs::part::{build_1p5d, Thresholds};
use sunbfs::rmat::RmatParams;

fn bitmap_from_words(words: &[u64]) -> Bitmap {
    let mut b = Bitmap::new(words.len() as u64 * 64);
    b.words_mut().copy_from_slice(words);
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The checkpoint codec round-trips arbitrary states, and rejects
    /// any single flipped byte and any truncation: a torn or corrupted
    /// snapshot can never be mistaken for a verified one.
    #[test]
    fn codec_round_trips_and_rejects_any_damage(
        hub_words in prop::collection::vec(any::<u64>(), 0..8),
        l_words in prop::collection::vec(any::<u64>(), 0..8),
        hub_parent in prop::collection::vec(any::<u64>(), 0..16),
        l_parent in prop::collection::vec(any::<u64>(), 0..16),
        (iter, active_l, visited_l) in (1u32..64, 0u64..1 << 40, 0u64..1 << 40),
        sim_millis in 0u64..1_000_000,
        fmass in (any::<u64>(), any::<u64>(), any::<u64>()),
        vmass in (any::<u64>(), any::<u64>(), any::<u64>()),
        dir_bits in 0u8..64,
        damage in any::<u64>(),
    ) {
        let fmass = [fmass.0, fmass.1, fmass.2];
        let vmass = [vmass.0, vmass.1, vmass.2];
        let prev_dirs = std::array::from_fn(|i| {
            if dir_bits >> i & 1 == 1 { Direction::Pull } else { Direction::Push }
        });
        let state = CheckpointState {
            iter,
            active_l,
            visited_l,
            sim_seconds: sim_millis as f64 / 1e3,
            frontier_mass: fmass,
            visited_mass: vmass,
            prev_dirs,
            hub_curr: bitmap_from_words(&hub_words),
            hub_visited: bitmap_from_words(&hub_words),
            hub_parent: hub_parent.clone(),
            l_curr: bitmap_from_words(&l_words),
            l_visited: bitmap_from_words(&l_words),
            l_parent: l_parent.clone(),
        };
        let bytes = state.encode();
        prop_assert_eq!(CheckpointState::decode(&bytes).as_ref(), Some(&state));

        let mut flipped = bytes.clone();
        let at = (damage % bytes.len() as u64) as usize;
        flipped[at] ^= 0x10;
        prop_assert_eq!(CheckpointState::decode(&flipped), None);

        let cut = 1 + (damage % (bytes.len() as u64 - 1)) as usize;
        prop_assert_eq!(CheckpointState::decode(&bytes[..bytes.len() - cut]), None);
    }
}

/// This rank's parent array plus the per-iteration `end_op` series.
type RankOutcome = Result<(Vec<u64>, Vec<u64>), RankFailure>;

/// One full SPMD traversal on `cluster`: generate, partition, BFS with
/// optional checkpointing. Returns per-rank `(parents, end_ops)`.
fn traverse(
    cluster: &Cluster,
    params: &RmatParams,
    root: u64,
    store: Option<&CheckpointStore>,
) -> Vec<RankOutcome> {
    let n = params.num_vertices();
    let nranks = cluster.topology().num_ranks() as u64;
    cluster.run_fallible(|ctx| {
        let chunk = sunbfs::rmat::generate_chunk(params, ctx.rank() as u64, nranks);
        let part = build_1p5d(ctx, n, &chunk, Thresholds::new(256, 64));
        drop(chunk);
        let out = run_bfs_recoverable(ctx, &part, root, &EngineConfig::default(), store)
            .expect("engine must terminate");
        let end_ops = out.stats.iterations.iter().map(|it| it.end_op).collect();
        (out.parents, end_ops)
    })
}

fn concat_parents(results: &[RankOutcome]) -> Vec<u64> {
    results
        .iter()
        .flat_map(|r| r.as_ref().expect("all ranks ok").0.iter().copied())
        .collect()
}

/// Kill one rank at every iteration boundary in turn. Each kill must
/// leave a store whose common checkpoint is exactly the last completed
/// iteration, and the resumed run must reproduce the fault-free parent
/// array bit for bit.
#[test]
fn resume_from_every_iteration_boundary_reproduces_parents() {
    let params = RmatParams::graph500(9, 42);
    let shape = MeshShape::new(2, 2);
    let machine = MachineConfig::new_sunway();
    let root = sunbfs::driver::pick_roots(&params, 1).expect("connected root")[0];

    let clean_cluster = Cluster::new(shape, machine);
    let clean = traverse(&clean_cluster, &params, root, None);
    let reference = concat_parents(&clean);
    let end_ops = clean[0].as_ref().expect("clean run ok").1.clone();
    assert!(
        end_ops.len() >= 3,
        "need a multi-iteration traversal to exercise resume, got {} iterations",
        end_ops.len()
    );

    for (idx, &boundary) in end_ops.iter().enumerate() {
        // `end_op` is the op index of the first collective *after*
        // iteration idx+1 completed — a panic there fires after every
        // rank saved that iteration's checkpoint.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            rank: 1,
            op_index: boundary,
            kind: FaultKind::Panic,
        }]);
        let cluster = Cluster::with_faults(shape, machine, plan);
        let store = CheckpointStore::new(4);

        let faulted = traverse(&cluster, &params, root, Some(&store));
        assert!(
            faulted.iter().any(|r| r.is_err()),
            "boundary {boundary}: injected panic must kill the run"
        );
        assert_eq!(
            store.common_iter(),
            Some(idx as u32 + 1),
            "boundary {boundary}: all ranks must agree on the last completed iteration"
        );

        // The event already fired (transient-fault model): the retry on
        // the same cluster resumes from the checkpoint and completes.
        let resumed = traverse(&cluster, &params, root, Some(&store));
        assert!(resumed.iter().all(Result::is_ok));
        assert_eq!(
            concat_parents(&resumed),
            reference,
            "boundary {boundary}: resumed parents must be byte-identical to the fault-free run"
        );
    }
}
